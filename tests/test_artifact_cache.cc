/**
 * @file
 * Persistence tests for the JIT artifact cache
 * (kernel/artifact_cache.h + the JitBackend's use of it):
 *
 *  - warm start: a second backend (and a second SharedContext) over
 *    the same DIFFUSE_CACHE_DIR compiles ZERO kernels and loads every
 *    module from disk;
 *  - truncated, corrupted and wrong-key artifacts are rejected by
 *    post-dlopen verification and recompiled — never trusted, never a
 *    crash;
 *  - build-fingerprint changes re-key artifacts (stale entries are
 *    simply never looked up);
 *  - the LRU size cap evicts oldest-first on publish;
 *  - two threads racing the same key serialize on the advisory file
 *    lock and compile exactly once;
 *  - an unwritable cache path degrades to in-memory scratch compiles.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "cunumeric/ndarray.h"
#include "kernel/codegen.h"
#include "kernel/compiler.h"
#include "kernel/exec.h"
#include "kernel/ir.h"
#include "kernel/plan.h"

namespace diffuse {
namespace kir {
namespace {

namespace fs = std::filesystem;

/** A self-deleting cache directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/diffuse-cache-test-XXXXXX";
        char *p = mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p != nullptr ? p : "";
    }
    ~TempDir()
    {
        if (!path.empty())
            fs::remove_all(path);
    }
};

std::vector<std::string>
artifactsIn(const std::string &dir)
{
    std::vector<std::string> out;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".so")
            out.push_back(e.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

JitBackend::Config
diskConfig(const std::string &dir)
{
    JitBackend::Config cfg;
    cfg.cacheDir = dir;
    cfg.shareProcessModules = false;
    return cfg;
}

/** A tiny two-input kernel: out = (a + b) * scale. */
KernelFunction
makeAxpyKernel(double scale)
{
    KernelFunction fn;
    fn.name = "axpy";
    fn.numArgs = 3;
    fn.buffers.resize(3);
    for (auto &b : fn.buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    LoopNest nest;
    nest.domainBuf = 2;
    BodyBuilder b(nest.body);
    b.store(2, b.binary(Op::Mul, b.binary(Op::Add, b.load(0), b.load(1)),
                        b.constant(scale)));
    fn.nests.push_back(std::move(nest));
    return fn;
}

BufferBinding
bindVec(std::vector<double> &v)
{
    BufferBinding b;
    b.base = v.data();
    b.dims = 1;
    b.extent[0] = coord_t(v.size());
    b.stride[0] = 1;
    return b;
}

/** Attach + run the kernel, asserting the JIT engaged and the result
 * matches the scalar oracle bitwise. */
void
attachAndCheck(JitBackend &be, const KernelFunction &fn,
               const std::string &key, bool expect_jit = true)
{
    CompiledKernel k;
    k.fn = fn;
    k.plan = std::make_shared<const ExecutablePlan>(lowerPlan(fn, 256));
    be.attach(key, k);
    if (expect_jit) {
        ASSERT_NE(k.jit, nullptr);
        ASSERT_NE(k.jit->nest(0), nullptr);
    }

    const coord_t n = 301;
    std::vector<double> a(n), b(n), ref(n, 0.0), vec(n, 0.0);
    for (coord_t i = 0; i < n; i++) {
        a[std::size_t(i)] = std::sin(double(i) * 0.7);
        b[std::size_t(i)] = std::cos(double(i) * 1.3);
    }
    Executor ex;
    {
        std::vector<BufferBinding> binds{bindVec(a), bindVec(b),
                                         bindVec(ref)};
        ex.runScalar(fn, binds, {});
    }
    std::vector<BufferBinding> binds{bindVec(a), bindVec(b),
                                     bindVec(vec)};
    ex.run(fn, *k.plan, binds, {}, k.jit.get());
    EXPECT_EQ(std::memcmp(vec.data(), ref.data(),
                          std::size_t(n) * sizeof(double)),
              0);
}

TEST(ArtifactCache, WarmBackendCompilesZeroKernels)
{
    TempDir dir;
    {
        JitBackend be{diskConfig(dir.path)};
        ASSERT_TRUE(be.cache().persistent());
        attachAndCheck(be, makeAxpyKernel(1.5), "warm_key");
        EXPECT_EQ(be.stats().kernelsCompiled, 1u);
        EXPECT_EQ(be.stats().artifactMisses, 1u);
    }
    ASSERT_EQ(artifactsIn(dir.path).size(), 1u);

    // A brand-new backend (modelling a cold process: the in-process
    // registry is not consulted in persistent mode) loads from disk.
    JitBackend warm{diskConfig(dir.path)};
    attachAndCheck(warm, makeAxpyKernel(1.5), "warm_key");
    EXPECT_EQ(warm.stats().kernelsCompiled, 0u);
    EXPECT_EQ(warm.stats().artifactHits, 1u);
    EXPECT_EQ(warm.stats().artifactMisses, 0u);
}

TEST(ArtifactCache, TruncatedAndCorruptedArtifactsAreRecompiled)
{
    TempDir dir;
    {
        JitBackend be{diskConfig(dir.path)};
        attachAndCheck(be, makeAxpyKernel(2.0), "corrupt_key");
    }
    std::vector<std::string> files = artifactsIn(dir.path);
    ASSERT_EQ(files.size(), 1u);

    // Truncate to half: dlopen fails; reject and recompile.
    {
        auto sz = fs::file_size(files[0]);
        fs::resize_file(files[0], sz / 2);
        JitBackend be{diskConfig(dir.path)};
        attachAndCheck(be, makeAxpyKernel(2.0), "corrupt_key");
        EXPECT_EQ(be.stats().artifactsRejected, 1u);
        EXPECT_EQ(be.stats().kernelsCompiled, 1u);
        EXPECT_EQ(be.stats().artifactHits, 0u);
    }

    // Overwrite with garbage bytes of the same length.
    {
        auto sz = fs::file_size(files[0]);
        std::ofstream f(files[0], std::ios::binary | std::ios::trunc);
        for (std::uintmax_t i = 0; i < sz; i++)
            f.put(char(i * 131 + 7));
        f.close();
        JitBackend be{diskConfig(dir.path)};
        attachAndCheck(be, makeAxpyKernel(2.0), "corrupt_key");
        EXPECT_EQ(be.stats().artifactsRejected, 1u);
        EXPECT_EQ(be.stats().kernelsCompiled, 1u);
    }
}

TEST(ArtifactCache, WrongKeyArtifactRejectedByEmbeddedKeyCheck)
{
    // A VALID shared object copied over another key's filename (a
    // collision / stale-copy stand-in): dlopen succeeds but the
    // embedded diffuse_jit_key differs, so verification rejects it.
    TempDir dir;
    {
        JitBackend be{diskConfig(dir.path)};
        attachAndCheck(be, makeAxpyKernel(3.0), "key_a");
    }
    std::vector<std::string> one = artifactsIn(dir.path);
    ASSERT_EQ(one.size(), 1u);
    {
        JitBackend be{diskConfig(dir.path)};
        attachAndCheck(be, makeAxpyKernel(4.0), "key_b");
    }
    std::vector<std::string> two = artifactsIn(dir.path);
    ASSERT_EQ(two.size(), 2u);
    std::string other =
        two[0] == one[0] ? two[1] : two[0];
    fs::copy_file(one[0], other,
                  fs::copy_options::overwrite_existing);

    JitBackend be{diskConfig(dir.path)};
    attachAndCheck(be, makeAxpyKernel(4.0), "key_b");
    EXPECT_EQ(be.stats().artifactsRejected, 1u);
    EXPECT_EQ(be.stats().kernelsCompiled, 1u);
}

TEST(ArtifactCache, FingerprintChangeRekeysArtifacts)
{
    TempDir dir;
    JitBackend::Config v1 = diskConfig(dir.path);
    v1.fingerprintExtra = "build-v1";
    {
        JitBackend be{v1};
        attachAndCheck(be, makeAxpyKernel(5.0), "fp_key");
        EXPECT_EQ(be.stats().kernelsCompiled, 1u);
    }
    // Same kernel, same canonical key, different build fingerprint:
    // the stale artifact is never looked up; a fresh one is compiled
    // alongside it (no crash, no false hit).
    JitBackend::Config v2 = diskConfig(dir.path);
    v2.fingerprintExtra = "build-v2";
    {
        JitBackend be{v2};
        attachAndCheck(be, makeAxpyKernel(5.0), "fp_key");
        EXPECT_EQ(be.stats().kernelsCompiled, 1u);
        EXPECT_EQ(be.stats().artifactHits, 0u);
    }
    EXPECT_EQ(artifactsIn(dir.path).size(), 2u);

    // The original fingerprint still warm-starts from its artifact.
    JitBackend be{v1};
    attachAndCheck(be, makeAxpyKernel(5.0), "fp_key");
    EXPECT_EQ(be.stats().kernelsCompiled, 0u);
    EXPECT_EQ(be.stats().artifactHits, 1u);
}

TEST(ArtifactCache, LruCapEvictsOldestOnPublish)
{
    TempDir dir;
    // Pre-populate with two ~700 KiB decoys, mtimes staggered into
    // the past, so one publish pushes the directory over a 1 MiB cap.
    auto plantDecoy = [&](const char *name, int age_s) {
        std::string p = dir.path + "/" + name;
        std::ofstream f(p, std::ios::binary);
        std::vector<char> block(700 * 1024, 'x');
        f.write(block.data(), std::streamsize(block.size()));
        f.close();
        struct timeval tv[2];
        gettimeofday(&tv[0], nullptr);
        tv[0].tv_sec -= age_s;
        tv[1] = tv[0];
        ASSERT_EQ(utimes(p.c_str(), tv), 0);
    };
    plantDecoy("00old.so", 2000);
    plantDecoy("11newer.so", 1000);

    JitBackend::Config cfg = diskConfig(dir.path);
    cfg.cacheMaxMB = 1;
    JitBackend be{cfg};
    attachAndCheck(be, makeAxpyKernel(6.0), "lru_key");

    EXPECT_GE(be.stats().evictions, 1u);
    EXPECT_FALSE(fs::exists(dir.path + "/00old.so"));
    // The just-published artifact survives its own eviction pass.
    std::vector<std::string> left = artifactsIn(dir.path);
    std::uintmax_t total = 0;
    bool real_present = false; // the hash-named compiled artifact
    for (const std::string &p : left) {
        total += fs::file_size(p);
        real_present = real_present ||
                       (p.find("00old") == std::string::npos &&
                        p.find("11newer") == std::string::npos);
    }
    EXPECT_TRUE(real_present);
    EXPECT_LE(total, std::uintmax_t(1) << 20);
}

TEST(ArtifactCache, ConcurrentWritersCompileExactlyOnce)
{
    TempDir dir;
    KernelFunction fn = makeAxpyKernel(7.0);
    JitBackend b1{diskConfig(dir.path)};
    JitBackend b2{diskConfig(dir.path)};

    auto race = [&](JitBackend &be) {
        CompiledKernel k;
        k.fn = fn;
        k.plan =
            std::make_shared<const ExecutablePlan>(lowerPlan(fn, 256));
        be.attach("race_key", k);
        EXPECT_NE(k.jit, nullptr);
    };
    std::thread t1([&] { race(b1); });
    std::thread t2([&] { race(b2); });
    t1.join();
    t2.join();

    // The flock serializes the compile: one backend built the
    // artifact, the other loaded it after waiting on the lock.
    std::uint64_t compiled =
        b1.stats().kernelsCompiled + b2.stats().kernelsCompiled;
    std::uint64_t hits =
        b1.stats().artifactHits + b2.stats().artifactHits;
    EXPECT_EQ(compiled, 1u);
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(artifactsIn(dir.path).size(), 1u);
}

TEST(ArtifactCache, UnwritableCacheDirDegradesToMemory)
{
    // A path whose parent is a regular file can never be created: the
    // cache must degrade to scratch compiles, not fail the attach.
    TempDir dir;
    std::string file = dir.path + "/plain_file";
    std::ofstream(file).put('x');
    JitBackend::Config cfg = diskConfig(file + "/sub");
    JitBackend be{cfg};
    EXPECT_FALSE(be.cache().persistent());
    attachAndCheck(be, makeAxpyKernel(8.0), "degrade_key");
    EXPECT_EQ(be.stats().kernelsCompiled, 1u);
    EXPECT_EQ(be.stats().artifactHits, 0u);
}

/** End to end: two SharedContexts over one DIFFUSE_CACHE_DIR. */
TEST(ArtifactCache, SecondSharedContextWarmStartsFromDisk)
{
    using num::Context;
    using num::NDArray;

    auto body = [](DiffuseRuntime &rt) {
        Context ctx(rt);
        const coord_t n = 64;
        NDArray a = ctx.random(n, 0xA11CE, -1.0, 1.0);
        NDArray b = ctx.random(n, 0xB0B, -1.0, 1.0);
        for (int rep = 0; rep < 2; rep++) {
            NDArray t = ctx.add(a, b);
            ctx.assign(a, t);
            NDArray v = ctx.mulScalar(0.5, ctx.erf(a));
            ctx.assign(b, v);
            rt.flushWindow();
        }
        std::vector<double> ha = ctx.toHost(a), hb = ctx.toHost(b);
        ha.insert(ha.end(), hb.begin(), hb.end());
        return ha;
    };

    DiffuseOptions opts;
    opts.mode = rt::ExecutionMode::Real;

    // Oracle: the identical program with the JIT off.
    opts.jit = 0;
    std::vector<double> want;
    {
        auto ctx = SharedContext::create(rt::MachineConfig::withGpus(4));
        want = body(*ctx->createSession(opts));
    }

    TempDir dir;
    ASSERT_EQ(setenv("DIFFUSE_CACHE_DIR", dir.path.c_str(), 1), 0);
    opts.jit = 1;

    std::uint64_t cold_compiles = 0;
    std::vector<double> got_cold, got_warm;
    {
        auto ctx = SharedContext::create(rt::MachineConfig::withGpus(4));
        got_cold = body(*ctx->createSession(opts));
        cold_compiles = ctx->jit().stats().kernelsCompiled;
    }
    {
        auto ctx = SharedContext::create(rt::MachineConfig::withGpus(4));
        got_warm = body(*ctx->createSession(opts));
        JitBackend::Stats st = ctx->jit().stats();
        EXPECT_EQ(st.kernelsCompiled, 0u);
        EXPECT_GT(st.artifactHits, 0u);
    }
    ASSERT_EQ(unsetenv("DIFFUSE_CACHE_DIR"), 0);

    EXPECT_GT(cold_compiles, 0u);
    ASSERT_EQ(got_cold.size(), want.size());
    EXPECT_EQ(std::memcmp(got_cold.data(), want.data(),
                          want.size() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(got_warm.data(), want.data(),
                          want.size() * sizeof(double)),
              0);
}

} // namespace
} // namespace kir
} // namespace diffuse
