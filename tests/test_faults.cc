/**
 * @file
 * Failure domains and the deterministic fault-injection harness.
 *
 * Every injected fault must land in exactly one of two buckets:
 *
 *  - it surfaces as a *structured* DiffuseError on the faulting
 *    session (root cause attached, session enters the failed state,
 *    resetAfterError() recovers, a clean re-run is bitwise-identical
 *    to a never-faulted run), or
 *  - it is transparently absorbed by the degradation ladder (exchange
 *    retry, compile → scalar-interpreter fallback, trace → analyzed
 *    path) with results bitwise-identical to the fault-free run.
 *
 * No fault kind may crash the process, corrupt a sibling session, or
 * poison a shared cache. The default run covers each kind once plus
 * the negative tests; DIFFUSE_FAULTS_FULL=1 — set by the `faults_slow`
 * ctest target (label `slow`) and the sanitizer CI jobs — sweeps the
 * full fault-kind × workers 1/8 × ranks 1/4 × trace on/off ×
 * shared-cache on/off matrix.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/context.h"
#include "core/memo.h"
#include "cunumeric/ndarray.h"
#include "runtime/fault.h"

namespace diffuse {
namespace {

using num::Context;
using num::NDArray;

rt::MachineConfig
machine()
{
    return rt::MachineConfig::withGpus(4);
}

DiffuseOptions
realOpts(int workers = 1, int ranks = 1, int trace = 1)
{
    DiffuseOptions o;
    o.mode = rt::ExecutionMode::Real;
    o.workers = workers;
    o.ranks = ranks;
    o.trace = trace;
    o.sharedCache = 1;
    return o;
}

std::vector<std::uint64_t>
bits(const std::vector<double> &v)
{
    std::vector<std::uint64_t> out(v.size());
    std::memcpy(out.data(), v.data(), v.size() * sizeof(double));
    return out;
}

/**
 * The canonical workload: a fixed solver-flavored loop body (axpy
 * chains, an aliasing slice write, a reduction fed back as a
 * coefficient, scalar read-backs), `reps` repetitions with a flush
 * each — enough compute tasks, exchange copies (at ranks > 1) and
 * repeated epochs (trace replay from rep 2) to give every fault kind
 * real opportunities.
 */
std::vector<std::vector<std::uint64_t>>
runBody(DiffuseRuntime &rt, int reps = 3)
{
    Context ctx(rt);
    const coord_t n = 48;
    NDArray a = ctx.random(n, 0xA11CE, -1.0, 1.0);
    NDArray b = ctx.random(n, 0xB0B, -1.0, 1.0);
    for (int rep = 0; rep < reps; rep++) {
        NDArray t = ctx.add(a, b);
        ctx.assign(a, t);
        NDArray alpha = ctx.dot(a, b);
        NDArray u = ctx.axpyS(a, alpha, b);
        ctx.assign(b, u);
        ctx.assign(a.slice(1, n), b.slice(0, n - 1));
        NDArray v = ctx.mulScalar(0.5, ctx.erf(a));
        ctx.assign(a, v);
        (void)ctx.value(ctx.sum(b));
        rt.flushWindow();
    }
    return {bits(ctx.toHost(a)), bits(ctx.toHost(b))};
}

/** Reference result for a configuration: a never-faulted fresh run. */
std::vector<std::vector<std::uint64_t>>
cleanReference(const DiffuseOptions &o)
{
    DiffuseRuntime rt(machine(), o);
    return runBody(rt);
}

// ---------------------------------------------------------------------
// The injector itself: determinism, masking, armed shots
// ---------------------------------------------------------------------

TEST(Faults, InjectorIsDeterministicPerSeedAndRespectsKindMask)
{
    auto sample = [](std::uint64_t seed, unsigned mask) {
        rt::FaultInjector inj;
        inj.configure(seed, 500, mask); // 5%
        std::vector<bool> out;
        for (int i = 0; i < 400; i++)
            out.push_back(inj.shouldFault(rt::FaultKind::Kernel));
        return out;
    };
    const unsigned all = ~0u;
    auto a = sample(42, all);
    auto b = sample(42, all);
    EXPECT_EQ(a, b); // same seed, same decisions — always
    std::size_t fired = 0;
    for (bool f : a)
        fired += f ? 1u : 0u;
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, 100u); // ~5% of 400, not a firehose

    // A mask without the sampled kind never fires.
    unsigned no_kernel = all & ~(1u << unsigned(rt::FaultKind::Kernel));
    for (bool f : sample(42, no_kernel))
        EXPECT_FALSE(f);
}

TEST(Faults, ArmedShotFiresExactlyTheRequestedBurst)
{
    rt::FaultInjector inj;
    // CI's fault smoke row runs the whole suite with ambient
    // DIFFUSE_FAULT_RATE > 0; only claim "off by default" when the
    // environment really is clean, and neutralize it either way —
    // this test pins down exact shot semantics.
    if (envInt("DIFFUSE_FAULT_RATE", 0, 0, 10000) == 0)
        EXPECT_FALSE(inj.enabled()); // off by default (rate 0)
    inj.configure(/*seed=*/1, /*ratePerTenK=*/0, /*kindMask=*/0u);
    inj.armOneShot(rt::FaultKind::Alloc, /*skip=*/3, /*burst=*/2);
    EXPECT_TRUE(inj.enabled());
    std::vector<bool> got;
    for (int i = 0; i < 8; i++)
        got.push_back(inj.shouldFault(rt::FaultKind::Alloc));
    std::vector<bool> expect = {false, false, false, true,
                                true,  false, false, false};
    EXPECT_EQ(got, expect);
    EXPECT_EQ(inj.fired(), 2u);
    // Other kinds were never armed.
    EXPECT_FALSE(inj.shouldFault(rt::FaultKind::Exchange));
}

TEST(Faults, InjectorOffByDefaultAndFaultStatsZero)
{
    DiffuseRuntime rt(machine(), realOpts(8, 4));
    // Neutralize CI's ambient fault smoke row: this test pins down
    // the disarmed path (a single relaxed load, all stats zero).
    if (envInt("DIFFUSE_FAULT_RATE", 0, 0, 10000) == 0)
        EXPECT_FALSE(rt.low().faults().enabled()); // off by default
    rt.low().faults().configure(/*seed=*/1, /*ratePerTenK=*/0,
                                /*kindMask=*/0u);
    (void)runBody(rt);
    EXPECT_FALSE(rt.low().faults().enabled());
    EXPECT_EQ(rt.low().faults().fired(), 0u);
    EXPECT_EQ(rt.low().faultStats().exchangeRetries, 0u);
    EXPECT_EQ(rt.low().faultStats().scalarFallbacks, 0u);
    EXPECT_EQ(rt.low().faultStats().storesPoisoned, 0u);
    EXPECT_EQ(rt.low().streamStats().tasksFailed, 0u);
    EXPECT_EQ(rt.low().streamStats().tasksCancelled, 0u);
    EXPECT_FALSE(rt.failed());
}

// ---------------------------------------------------------------------
// Hard failures: structured surfacing, poisoning, recovery
// ---------------------------------------------------------------------

TEST(Faults, KernelFaultSurfacesStructurallyAndRecoversBitwise)
{
    for (int workers : {1, 8}) {
        // Pinned to the draining flush: the raw KernelFault code must
        // surface inside runBody (pipelining defers and re-wraps it
        // at the next synchronizing read — see test_scheduler.cc).
        DiffuseOptions o = realOpts(workers);
        o.pipeline = 0;
        auto expect = cleanReference(o);
        DiffuseRuntime rt(machine(), o);
        rt.low().faults().armOneShot(rt::FaultKind::Kernel, /*skip=*/4);
        bool threw = false;
        try {
            (void)runBody(rt);
        } catch (const DiffuseError &e) {
            threw = true;
            EXPECT_EQ(e.code(), ErrorCode::KernelFault);
            EXPECT_FALSE(e.error().originTask.empty());
        }
        ASSERT_TRUE(threw) << "workers " << workers;
        EXPECT_TRUE(rt.failed());
        EXPECT_GT(rt.low().streamStats().tasksFailed, 0u);
        EXPECT_GT(rt.low().faultStats().storesPoisoned, 0u);

        // The failed state latches: further submissions are refused
        // with the root cause attached, not silently executed. (Store
        // creation alone submits nothing — fill does.)
        {
            Context ctx(rt);
            NDArray x = ctx.zeros(8);
            bool refused = false;
            try {
                ctx.fill(x, 1.0);
            } catch (const DiffuseError &e) {
                refused = true;
                EXPECT_EQ(e.code(), ErrorCode::SessionFailed);
                EXPECT_NE(e.error().message.find("kernel"),
                          std::string::npos);
            }
            EXPECT_TRUE(refused);
        }

        // Recovery: a clean re-run in the same runtime is
        // bitwise-identical to a never-faulted run.
        rt.resetAfterError();
        EXPECT_FALSE(rt.failed());
        EXPECT_EQ(runBody(rt), expect) << "workers " << workers;
    }
}

TEST(Faults, AllocFaultSurfacesStructurallyAndRecovers)
{
    auto expect = cleanReference(realOpts());
    DiffuseRuntime rt(machine(), realOpts());
    rt.low().faults().armOneShot(rt::FaultKind::Alloc, /*skip=*/0);
    bool threw = false;
    try {
        (void)runBody(rt);
    } catch (const DiffuseError &e) {
        threw = true;
        EXPECT_EQ(e.code(), ErrorCode::AllocFailed);
    }
    ASSERT_TRUE(threw);
    rt.resetAfterError();
    EXPECT_EQ(runBody(rt), expect);
}

TEST(Faults, CancellationPropagatesAlongHazardEdgesToTheRootCause)
{
    // An unfused RAW chain: the faulted task's dependents must be
    // cancelled (never run) and every error points at the root cause.
    // Pinned to the draining flush — the test asserts the root code
    // at the flush site (the pipelined counterpart lives in
    // test_scheduler.cc).
    DiffuseOptions o = realOpts();
    o.fusionEnabled = false;
    o.pipeline = 0;
    DiffuseRuntime rt(machine(), o);
    Context ctx(rt);
    NDArray a = ctx.random(32, 0x1, -1.0, 1.0);
    NDArray b = ctx.random(32, 0x2, -1.0, 1.0);
    rt.low().faults().armOneShot(rt::FaultKind::Kernel, /*skip=*/3);
    bool threw = false;
    try {
        for (int i = 0; i < 6; i++) {
            NDArray t = ctx.add(a, b);
            ctx.assign(a, t);
        }
        rt.flushWindow();
    } catch (const DiffuseError &e) {
        threw = true;
        // flushWindow surfaces the ROOT error, not a cancellation.
        EXPECT_EQ(e.code(), ErrorCode::KernelFault);
    }
    ASSERT_TRUE(threw);
    EXPECT_EQ(rt.low().streamStats().tasksFailed, 1u);
    EXPECT_GT(rt.low().streamStats().tasksCancelled, 0u);
    // Reading a poisoned store at the low level names the poison and
    // carries the root origin.
    EXPECT_TRUE(rt.low().storePoisoned(a.store()) ||
                rt.low().storePoisoned(b.store()));
}

TEST(Faults, PoisonedStoreReadSurfacesStorePoisoned)
{
    // Pins the draining flush: the fault must surface as KernelFault
    // at the flush site (the pipelined surfacing — StorePoisoned at
    // the next host read — is covered in test_scheduler.cc).
    DiffuseOptions o = realOpts();
    o.pipeline = 0;
    DiffuseRuntime rt(machine(), o);
    Context ctx(rt);
    NDArray a = ctx.random(32, 0x1, -1.0, 1.0);
    (void)ctx.toHost(a); // materialize cleanly
    rt.low().faults().armOneShot(rt::FaultKind::Kernel, /*skip=*/0);
    NDArray t = ctx.add(a, a);
    ctx.assign(a, t);
    EXPECT_THROW(rt.flushWindow(), DiffuseError);
    ASSERT_TRUE(rt.low().storePoisoned(a.store()));
    bool threw = false;
    try {
        (void)rt.low().dataF64(a.store());
    } catch (const DiffuseError &e) {
        threw = true;
        EXPECT_EQ(e.code(), ErrorCode::StorePoisoned);
        EXPECT_EQ(e.error().originStore, a.store());
        EXPECT_FALSE(e.error().originTask.empty());
    }
    EXPECT_TRUE(threw);
    rt.resetAfterError();
    EXPECT_FALSE(rt.low().storePoisoned(a.store()));
}

// ---------------------------------------------------------------------
// The degradation ladder: transparent, bitwise-invisible absorption
// ---------------------------------------------------------------------

TEST(Faults, TransientExchangeFaultsRetryBitwiseTransparently)
{
    auto expect = cleanReference(realOpts(1, /*ranks=*/4));
    DiffuseRuntime rt(machine(), realOpts(1, /*ranks=*/4));
    rt.low().faults().armOneShot(rt::FaultKind::Exchange, /*skip=*/1,
                                 /*burst=*/2);
    EXPECT_EQ(runBody(rt), expect);
    EXPECT_FALSE(rt.failed());
    EXPECT_EQ(rt.low().faultStats().exchangeRetries, 2u);
}

TEST(Faults, PersistentExchangeFaultSurfacesAndRecovers)
{
    // Pinned to the draining flush: the test asserts the raw
    // ExchangeFault code at the failure site, which pipelining would
    // defer and re-wrap at the next synchronizing read.
    DiffuseOptions o = realOpts(1, /*ranks=*/4);
    o.pipeline = 0;
    auto expect = cleanReference(o);
    DiffuseRuntime rt(machine(), o);
    // A burst longer than the retry bound: the copy fails for real.
    rt.low().faults().armOneShot(rt::FaultKind::Exchange, /*skip=*/0,
                                 /*burst=*/8);
    bool threw = false;
    try {
        (void)runBody(rt);
    } catch (const DiffuseError &e) {
        threw = true;
        EXPECT_EQ(e.code(), ErrorCode::ExchangeFault);
        EXPECT_NE(e.error().originStore, INVALID_STORE);
    }
    ASSERT_TRUE(threw);
    EXPECT_TRUE(rt.failed());
    rt.resetAfterError();
    EXPECT_EQ(runBody(rt), expect);
}

TEST(Faults, CompileFaultDegradesToScalarInterpreterBitwise)
{
    auto expect = cleanReference(realOpts(8));
    DiffuseRuntime rt(machine(), realOpts(8));
    rt.low().faults().armOneShot(rt::FaultKind::Compile, /*skip=*/2,
                                 /*burst=*/3);
    EXPECT_EQ(runBody(rt), expect);
    EXPECT_FALSE(rt.failed());
    EXPECT_EQ(rt.low().faultStats().scalarFallbacks, 3u);
}

TEST(Faults, TraceFaultFallsBackToTheAnalyzedPathBitwise)
{
    auto expect = cleanReference(realOpts(1, 1, /*trace=*/1));
    DiffuseRuntime rt(machine(), realOpts(1, 1, /*trace=*/1));
    rt.low().faults().armOneShot(rt::FaultKind::Trace, /*skip=*/0);
    EXPECT_EQ(runBody(rt), expect);
    EXPECT_FALSE(rt.failed());
    // The poisoned replay aborted to the analyzed path and recaptured;
    // later epochs still replayed.
    EXPECT_GT(rt.fusionStats().traceAborts, 0u);
    EXPECT_GT(rt.fusionStats().traceEpochsReplayed, 0u);
}

// ---------------------------------------------------------------------
// Failure domains: siblings and shared caches are untouchable
// ---------------------------------------------------------------------

TEST(Faults, SessionFailureLeavesSiblingsAndSharedCachesBitwiseIntact)
{
    auto expect = cleanReference(realOpts());
    auto ctx = SharedContext::create(machine());
    auto victim = ctx->createSession(realOpts());
    auto sibling = ctx->createSession(realOpts());

    victim->low().faults().armOneShot(rt::FaultKind::Kernel, /*skip=*/6);
    EXPECT_THROW((void)runBody(*victim), DiffuseError);
    EXPECT_TRUE(victim->failed());

    // The sibling is bitwise-unaffected...
    EXPECT_EQ(runBody(*sibling), expect);
    EXPECT_FALSE(sibling->failed());

    // ...the shared caches admitted nothing broken: a fresh session
    // compiles nothing new and replays the sibling's epochs.
    int plans = ctx->compiler().stats().plansLowered;
    auto after = ctx->createSession(realOpts());
    EXPECT_EQ(runBody(*after), expect);
    EXPECT_EQ(ctx->compiler().stats().plansLowered, plans);
    EXPECT_GT(after->fusionStats().traceEpochsReplayed, 0u);

    // And the victim itself recovers in place.
    victim->resetAfterError();
    EXPECT_EQ(runBody(*victim), expect);
}

TEST(Faults, BatchedPipelinedResetLeavesInFlightSiblingsIntact)
{
    // The hardest failure-domain configuration: pipelined flushes
    // (retirement of one window racing submission of the next) on top
    // of horizontal batching (siblings replaying the same epoch may
    // share one combined pool job). A kernel fault on the victim — and
    // the victim's resetAfterError(), issued while the siblings' work
    // is still in flight — must not perturb the siblings at all, and
    // the recovered victim must rerun bitwise-clean.
    //
    // gtest assertions are not thread-safe: threads only compute and
    // record into atomics; all comparisons happen on main after join.
    DiffuseOptions o = realOpts(/*workers=*/4);
    o.pipeline = 1;
    o.batch = 1;
    DiffuseOptions ref = o;
    ref.batch = 0;
    ref.pipeline = 0; // the draining, unbatched oracle
    auto expect = cleanReference(ref);

    // Generous gather window (read once at context construction) so
    // barrier-released siblings can actually coalesce.
    setenv("DIFFUSE_BATCH_WINDOW_US", "200000", 1);
    auto ctx = SharedContext::create(machine());
    unsetenv("DIFFUSE_BATCH_WINDOW_US");

    auto victim = ctx->createSession(o);
    auto sib_a = ctx->createSession(o);
    auto sib_b = ctx->createSession(o);

    // Warm the trace cache so the concurrent round replays (batching
    // only coalesces replayed epochs).
    EXPECT_EQ(runBody(*victim), expect);
    EXPECT_EQ(runBody(*sib_a), expect);
    EXPECT_EQ(runBody(*sib_b), expect);

    victim->low().faults().armOneShot(rt::FaultKind::Kernel, /*skip=*/6);

    std::barrier sync(3);
    std::atomic<bool> victim_threw{false};
    std::atomic<bool> victim_failed_before_reset{false};
    std::vector<std::vector<std::uint64_t>> victim_rerun;
    std::vector<std::vector<std::uint64_t>> got_a;
    std::vector<std::vector<std::uint64_t>> got_b;
    std::thread tv([&] {
        sync.arrive_and_wait();
        try {
            (void)runBody(*victim);
        } catch (const DiffuseError &) {
            victim_threw.store(true);
        }
        victim_failed_before_reset.store(victim->failed());
        // Reset immediately — concurrent with whatever the siblings
        // still have in flight — and rerun clean in place.
        victim->resetAfterError();
        victim_rerun = runBody(*victim);
    });
    std::thread ta([&] {
        sync.arrive_and_wait();
        got_a = runBody(*sib_a);
    });
    std::thread tb([&] {
        sync.arrive_and_wait();
        got_b = runBody(*sib_b);
    });
    tv.join();
    ta.join();
    tb.join();

    EXPECT_TRUE(victim_threw.load());
    EXPECT_TRUE(victim_failed_before_reset.load());
    EXPECT_FALSE(victim->failed());
    EXPECT_EQ(victim_rerun, expect);

    EXPECT_EQ(got_a, expect);
    EXPECT_EQ(got_b, expect);
    EXPECT_FALSE(sib_a->failed());
    EXPECT_FALSE(sib_b->failed());
    EXPECT_EQ(sib_a->low().faultStats().storesPoisoned, 0u);
    EXPECT_EQ(sib_b->low().faultStats().storesPoisoned, 0u);

    // The shared caches stayed clean through fault + reset: a fresh
    // session compiles nothing and replays the surviving epochs.
    int plans = ctx->compiler().stats().plansLowered;
    auto after = ctx->createSession(o);
    EXPECT_EQ(runBody(*after), expect);
    EXPECT_EQ(ctx->compiler().stats().plansLowered, plans);
    EXPECT_GT(after->fusionStats().traceEpochsReplayed, 0u);
}

TEST(Faults, MemoizerNeverCachesFailedBuildsAndNeverDeadlocks)
{
    Memoizer memo;
    int builds = 0;
    EXPECT_THROW(
        (void)memo.getOrBuild("key",
                              [&]() -> CachedGroup {
                                  builds++;
                                  throw DiffuseError(makeError(
                                      ErrorCode::CompileFault,
                                      "injected compile fault"));
                              }),
        DiffuseError);
    // The failed build was not cached (the next build runs) and the
    // shard lock was released on unwind (the next call would deadlock
    // otherwise).
    const CachedGroup *g = memo.getOrBuild("key", [&]() {
        builds++;
        CachedGroup cg;
        cg.name = "rebuilt";
        return cg;
    });
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->name, "rebuilt");
    EXPECT_EQ(builds, 2);
    // A hit now — the successful entry is served.
    EXPECT_EQ(memo.getOrBuild("key",
                              []() -> CachedGroup {
                                  ADD_FAILURE() << "cached entry lost";
                                  return {};
                              }),
              g);
}

// ---------------------------------------------------------------------
// Memory-budget pressure: evict the pool, then fail structurally
// ---------------------------------------------------------------------

TEST(Faults, MemBudgetEvictsPoolThenFailsStructurally)
{
    setenv("DIFFUSE_MEM_BUDGET", "1", 1); // 1 MB
    {
        DiffuseOptions o = realOpts();
        o.trace = 0;
        DiffuseRuntime rt(machine(), o);
        Context ctx(rt);
        // ~768 KB lives, then returns to the recycling pool.
        {
            NDArray a = ctx.zeros(98304, 1.0);
            (void)ctx.toHost(a);
        }
        rt.flushWindow();
        // A differently-sized ~776 KB allocation cannot pool-hit and
        // does not fit next to the pooled bytes: the pool is evicted
        // (warm pages are a luxury under pressure) and the allocation
        // then succeeds.
        NDArray b = ctx.zeros(97000, 2.0);
        (void)ctx.toHost(b);
        EXPECT_FALSE(rt.failed());
        EXPECT_GT(rt.low().faultStats().budgetEvictions, 0u);
        // A second large live allocation genuinely exceeds the budget:
        // a structured failure, not an OOM abort. A host-read-path
        // allocation failure throws directly — no task failed, nothing
        // is poisoned, so the session does NOT latch failed and work
        // on the stores that do fit simply continues.
        bool threw = false;
        try {
            NDArray c = ctx.zeros(98304, 3.0);
            (void)ctx.toHost(c);
        } catch (const DiffuseError &e) {
            threw = true;
            EXPECT_EQ(e.code(), ErrorCode::MemBudgetExceeded);
        }
        EXPECT_TRUE(threw);
        EXPECT_FALSE(rt.failed());
        EXPECT_EQ(ctx.toHost(b), std::vector<double>(97000, 2.0));
    }
    unsetenv("DIFFUSE_MEM_BUDGET");
}

// ---------------------------------------------------------------------
// Structured argument/lifetime errors (previously fatal/abort paths)
// ---------------------------------------------------------------------

TEST(Faults, DoubleDestroyIsAStructuredStoreError)
{
    StoreTable t;
    t.add(7, Rect::fromShape(Point(coord_t(4))), DType::F64, "x");
    EXPECT_TRUE(t.releaseApp(7));
    bool threw = false;
    try {
        (void)t.releaseApp(7);
    } catch (const DiffuseError &e) {
        threw = true;
        EXPECT_EQ(e.code(), ErrorCode::StoreError);
        EXPECT_EQ(e.error().originStore, StoreId(7));
    }
    EXPECT_TRUE(threw);

    // The runtime layer likewise: destroying an unknown store is a
    // structured error, not an assert.
    DiffuseRuntime rt(machine(), realOpts());
    EXPECT_THROW(rt.low().destroyStore(StoreId(9999)), DiffuseError);
}

TEST(Faults, HostAccessorShapeAndDtypeErrorsAreStructured)
{
    DiffuseRuntime rt(machine(), realOpts());
    Context ctx(rt);
    NDArray a = ctx.zeros(8, 1.0);
    bool threw = false;
    try {
        rt.writeStoreF64(a.store(), std::vector<double>(3, 0.0));
    } catch (const DiffuseError &e) {
        threw = true;
        EXPECT_EQ(e.code(), ErrorCode::InvalidArgument);
    }
    EXPECT_TRUE(threw);
    // The session is NOT failed by an argument error: the submission
    // never happened, so work continues.
    EXPECT_FALSE(rt.failed());
    EXPECT_EQ(ctx.toHost(a), std::vector<double>(8, 1.0));
}

TEST(Faults, ThrowOnFatalMakesFatalErrorsCatchable)
{
    setenv("DIFFUSE_THROW_ON_FATAL", "1", 1);
    bool threw = false;
    try {
        diffuse_fatal("injected fatal for test: %d", 42);
    } catch (const FatalError &e) {
        threw = true;
        EXPECT_NE(std::string(e.what()).find("injected fatal"),
                  std::string::npos);
    }
    unsetenv("DIFFUSE_THROW_ON_FATAL");
    EXPECT_TRUE(threw);
}

TEST(Faults, WarnIsRateLimitedAndThreadSafe)
{
    std::uint64_t calls0 = warnCallCount();
    std::uint64_t emits0 = warnEmitCount();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([] {
            for (int i = 0; i < 500; i++)
                diffuse_warn("fault-suite warn flood (iteration %d)", i);
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(warnCallCount() - calls0, 2000u);
    // First 8 occurrences emit, then only power-of-two counts: a hot
    // loop cannot flood stderr.
    std::uint64_t emitted = warnEmitCount() - emits0;
    EXPECT_GE(emitted, 8u);
    EXPECT_LE(emitted, 32u);
}

TEST(Faults, WarnRateLimiterIsSessionScoped)
{
    // The limiter key is (call site, session id): one session's storm
    // at a site must not swallow another session's *first* warning
    // from the same site.
    for (int i = 0; i < 200; i++)
        diffuse_warn_session(101, "session-scoped warn probe %d", i);
    std::uint64_t mid = warnEmitCount();
    diffuse_warn_session(102, "session-scoped warn probe %d", 0);
    EXPECT_EQ(warnEmitCount() - mid, 1u)
        << "a fresh session's first warning was rate-limited away";
    // Session 101's own bucket stays thinned: 200 calls emitted the
    // first 8 plus the power-of-two counts (16, 32, 64, 128) only.
    std::uint64_t before = warnEmitCount();
    diffuse_warn_session(101, "session-scoped warn probe %d", 0);
    EXPECT_EQ(warnEmitCount() - before, 0u);
}

TEST(Faults, ResetAfterErrorRewindsFaultOpportunityCounters)
{
    // An ambient fault rate is a deterministic function of (seed,
    // opportunity index). resetAfterError() must rewind the per-kind
    // opportunity counters so a rerun of the same program replays the
    // same fault schedule — without the rewind the second run starts
    // mid-sequence and fails somewhere else (or not at all), making
    // post-recovery behavior irreproducible.
    const unsigned kernelOnly = 1u << unsigned(rt::FaultKind::Kernel);
    bool exercised = false;
    for (std::uint64_t seed = 1; seed <= 64 && !exercised; seed++) {
        DiffuseRuntime rt(machine(), realOpts());
        rt.low().faults().configure(seed, /*ratePermyriad=*/300,
                                    kernelOnly);
        // (code, root-cause task) identifies the fault point; stream
        // event ids keep counting across the reset and so would
        // differ between the runs even with an identical schedule.
        auto faultPoint = [&]() -> std::string {
            try {
                (void)runBody(rt);
            } catch (const DiffuseError &e) {
                return std::to_string(int(e.code())) + ":" +
                       e.error().originTask;
            }
            return "";
        };
        std::string first = faultPoint();
        if (first.empty())
            continue; // this seed never fires within the body
        exercised = true;
        rt.resetAfterError();
        EXPECT_FALSE(rt.failed());
        EXPECT_EQ(first, faultPoint())
            << "seed " << seed
            << ": rerun after reset diverged from the first run's "
               "fault schedule";
    }
    ASSERT_TRUE(exercised) << "no seed in [1,64] fired a kernel fault";
}

// ---------------------------------------------------------------------
// The full matrix: every kind × workers × ranks × trace × shared-cache
// ---------------------------------------------------------------------

struct MatrixConfig
{
    rt::FaultKind kind;
    int workers;
    int ranks;
    int trace;
    int shared;

    std::string
    label() const
    {
        return std::string(rt::faultKindName(kind)) + "/w" +
               std::to_string(workers) + "/r" + std::to_string(ranks) +
               "/t" + std::to_string(trace) + "/s" +
               std::to_string(shared);
    }
};

/**
 * Run the body with `kind` armed in `rt`. Returns true if a structured
 * error surfaced (after verifying the session latched failed); the
 * caller then resets and re-runs. Transparent degradations return
 * false with `got` holding the results.
 */
bool
runFaulted(DiffuseRuntime &rt, rt::FaultKind kind,
           std::vector<std::vector<std::uint64_t>> *got)
{
    rt.low().faults().armOneShot(kind, /*skip=*/3, /*burst=*/8);
    try {
        *got = runBody(rt);
    } catch (const DiffuseError &e) {
        EXPECT_TRUE(rt.failed());
        EXPECT_FALSE(rt.error().message.empty());
        EXPECT_NE(e.code(), ErrorCode::None);
        return true;
    }
    EXPECT_FALSE(rt.failed());
    return false;
}

void
runMatrixCase(const MatrixConfig &m)
{
    SCOPED_TRACE(m.label());
    DiffuseOptions o = realOpts(m.workers, m.ranks, m.trace);
    o.sharedCache = m.shared;
    auto expect = cleanReference(o);

    auto ctx = SharedContext::create(machine());
    auto victim = ctx->createSession(o);
    auto sibling = ctx->createSession(o);

    std::vector<std::vector<std::uint64_t>> got;
    if (runFaulted(*victim, m.kind, &got)) {
        victim->resetAfterError();
        // Disarm the remaining burst before the clean re-run.
        victim->low().faults().configure(1, 0, ~0u);
        EXPECT_EQ(runBody(*victim), expect);
    } else {
        // Transparently degraded (or the kind had no opportunity in
        // this configuration, e.g. exchange at ranks=1): bitwise.
        EXPECT_EQ(got, expect);
    }
    // Whatever happened in the victim, the sibling is bitwise-clean.
    EXPECT_EQ(runBody(*sibling), expect);
    EXPECT_FALSE(sibling->failed());
}

TEST(Faults, MatrixSmokeEveryKindUnderTheProductionConfig)
{
    for (rt::FaultKind kind :
         {rt::FaultKind::Alloc, rt::FaultKind::Kernel,
          rt::FaultKind::Exchange, rt::FaultKind::Trace,
          rt::FaultKind::Compile}) {
        runMatrixCase({kind, 8, 4, 1, 1});
    }
}

TEST(Faults, FullMatrixEveryKindEveryConfig)
{
    if (envInt("DIFFUSE_FAULTS_FULL", 0, 0, 1) == 0)
        GTEST_SKIP() << "set DIFFUSE_FAULTS_FULL=1 (the faults_slow "
                        "ctest target) for the full matrix";
    for (rt::FaultKind kind :
         {rt::FaultKind::Alloc, rt::FaultKind::Kernel,
          rt::FaultKind::Exchange, rt::FaultKind::Trace,
          rt::FaultKind::Compile}) {
        for (int workers : {1, 8}) {
            for (int ranks : {1, 4}) {
                for (int trace : {0, 1}) {
                    for (int shared : {0, 1}) {
                        runMatrixCase(
                            {kind, workers, ranks, trace, shared});
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace diffuse
