/**
 * @file
 * Unit tests for the kernel IR, passes and executor — the mini-MLIR
 * pipeline of paper §6 (Fig 8).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernel/compiler.h"
#include "kernel/exec.h"
#include "kernel/ir.h"
#include "kernel/passes.h"

namespace diffuse {
namespace kir {
namespace {

/** Build the element-wise addition kernel of paper Fig 8a. */
KernelFunction
makeAdd(int alias_a = -1, int alias_b = -1, int alias_c = -1)
{
    KernelFunction fn;
    fn.name = "add";
    fn.numArgs = 3;
    fn.buffers.resize(3);
    for (auto &b : fn.buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    fn.buffers[0].aliasClass = alias_a;
    fn.buffers[1].aliasClass = alias_b;
    fn.buffers[2].aliasClass = alias_c;
    LoopNest nest;
    nest.domainBuf = 2;
    BodyBuilder b(nest.body);
    b.store(2, b.binary(Op::Add, b.load(0), b.load(1)));
    fn.nests.push_back(std::move(nest));
    return fn;
}

BufferBinding
bindVec(std::vector<double> &v)
{
    BufferBinding b;
    b.base = v.data();
    b.dims = 1;
    b.extent[0] = coord_t(v.size());
    b.stride[0] = 1;
    return b;
}

TEST(Executor, SimpleAdd)
{
    KernelFunction fn = makeAdd();
    std::vector<double> a{1, 2, 3, 4}, b{10, 20, 30, 40}, c(4, 0.0);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(b), bindVec(c)};
    Executor ex;
    ex.run(fn, binds, {});
    EXPECT_EQ(c, (std::vector<double>{11, 22, 33, 44}));
}

TEST(Executor, TranscendentalOps)
{
    KernelFunction fn;
    fn.numArgs = 2;
    fn.buffers.resize(2);
    for (auto &buf : fn.buffers) {
        buf.dims = 1;
        buf.shapeClass = 0;
    }
    LoopNest nest;
    nest.domainBuf = 1;
    BodyBuilder b(nest.body);
    int x = b.load(0);
    int e = b.unary(Op::Exp, x);
    int l = b.unary(Op::Log, e);
    int s = b.unary(Op::Sqrt, l);
    int er = b.unary(Op::Erf, s);
    b.store(1, er);
    fn.nests.push_back(std::move(nest));

    std::vector<double> in{0.25, 1.0, 4.0}, out(3, 0.0);
    std::vector<BufferBinding> binds{bindVec(in), bindVec(out)};
    Executor ex;
    ex.run(fn, binds, {});
    for (int i = 0; i < 3; i++)
        EXPECT_NEAR(out[i], std::erf(std::sqrt(in[i])), 1e-12);
}

TEST(Executor, BroadcastScalarBuffer)
{
    // A size-1 buffer broadcasts along the dense domain.
    KernelFunction fn = makeAdd();
    std::vector<double> a{1, 2, 3, 4}, s{100.0}, c(4, 0.0);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(s), bindVec(c)};
    Executor ex;
    ex.run(fn, binds, {});
    EXPECT_EQ(c, (std::vector<double>{101, 102, 103, 104}));
}

TEST(Executor, Strided2dView)
{
    // 2-D view into a 4x4 parent: interior 2x2 starting at (1,1).
    KernelFunction fn;
    fn.numArgs = 2;
    fn.buffers.resize(2);
    for (auto &buf : fn.buffers) {
        buf.dims = 2;
        buf.shapeClass = 0;
    }
    LoopNest nest;
    nest.domainBuf = 1;
    BodyBuilder b(nest.body);
    b.store(1, b.binary(Op::Mul, b.load(0), b.constant(2.0)));
    fn.nests.push_back(std::move(nest));

    std::vector<double> parent(16), out(16, 0.0);
    for (int i = 0; i < 16; i++)
        parent[std::size_t(i)] = i;
    BufferBinding in;
    in.base = parent.data() + 5; // (1,1)
    in.dims = 2;
    in.extent[0] = in.extent[1] = 2;
    in.stride[0] = 4;
    in.stride[1] = 1;
    BufferBinding ob = in;
    ob.base = out.data() + 5;
    std::vector<BufferBinding> binds{in, ob};
    Executor ex;
    ex.run(fn, binds, {});
    EXPECT_EQ(out[5], 10.0);
    EXPECT_EQ(out[6], 12.0);
    EXPECT_EQ(out[9], 18.0);
    EXPECT_EQ(out[10], 20.0);
    EXPECT_EQ(out[0], 0.0);
}

TEST(Executor, ReductionAccumulatesIntoBinding)
{
    KernelFunction fn;
    fn.numArgs = 2;
    fn.buffers.resize(2);
    fn.buffers[0].dims = 1;
    fn.buffers[0].shapeClass = 0;
    fn.buffers[1].dims = 1;
    fn.buffers[1].shapeClass = 1;
    LoopNest nest;
    nest.domainBuf = 0;
    BodyBuilder b(nest.body);
    Reduction red;
    red.accBuf = 1;
    red.op = ReductionOp::Sum;
    red.srcReg = b.load(0);
    nest.reductions.push_back(red);
    fn.nests.push_back(std::move(nest));

    std::vector<double> in{1, 2, 3, 4}, acc{10.0};
    std::vector<BufferBinding> binds{bindVec(in), bindVec(acc)};
    Executor ex;
    ex.run(fn, binds, {});
    // Rd applies on top of the existing value.
    EXPECT_EQ(acc[0], 20.0);
}

/**
 * The full Fig 8 walk-through: two adds with a temporary middle array,
 * composed, temporary promoted to a local, loops fused, stores
 * forwarded, temporary eliminated.
 */
TEST(Passes, Figure8Pipeline)
{
    KernelFunction add1 = makeAdd();
    KernelFunction add2 = makeAdd();

    // Fused buffer table: a, b, d, e external; c local (the temp).
    std::vector<BufferInfo> buffers(5);
    for (auto &b : buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    buffers[4].isLocal = true;
    // add1: (a=0, b=1, c=4); add2: (c=4, d=2, e=3).
    std::vector<std::vector<int>> bmaps{{0, 1, 4}, {4, 2, 3}};
    std::vector<std::vector<int>> smaps{{}, {}};
    const KernelFunction *parts[] = {&add1, &add2};

    KernelFunction fn =
        compose("fused_add_add", parts, bmaps, smaps, buffers, 4, 0);
    ASSERT_EQ(fn.nests.size(), 2u);

    PipelineStats stats = optimize(fn);
    EXPECT_EQ(stats.loopsFused, 1);
    EXPECT_GE(stats.loadsForwarded, 1);
    EXPECT_EQ(stats.localsEliminated, 1);
    ASSERT_EQ(fn.nests.size(), 1u);
    EXPECT_TRUE(fn.buffers[4].eliminated);

    // The optimized kernel computes e = (a+b) + d in one pass.
    std::vector<double> a{1, 2}, b{10, 20}, d{100, 200}, e(2, 0.0);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(b), bindVec(d),
                                     bindVec(e)};
    Executor ex;
    ex.run(fn, binds, {});
    EXPECT_EQ(e, (std::vector<double>{111, 222}));
}

TEST(Passes, LoopFusionRefusedAcrossAliasingBuffers)
{
    // Nest 1 writes buffer 2; nest 2 reads buffer 3 which aliases 2
    // (different views of one store): fusion must not merge them.
    KernelFunction add1 = makeAdd();
    KernelFunction add2 = makeAdd();
    std::vector<BufferInfo> buffers(6);
    for (auto &b : buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    buffers[2].aliasClass = 7;
    buffers[3].aliasClass = 7;
    std::vector<std::vector<int>> bmaps{{0, 1, 2}, {3, 4, 5}};
    std::vector<std::vector<int>> smaps{{}, {}};
    const KernelFunction *parts[] = {&add1, &add2};
    KernelFunction fn =
        compose("aliased", parts, bmaps, smaps, buffers, 6, 0);
    int fused = fuseLoops(fn);
    EXPECT_EQ(fused, 0);
    EXPECT_EQ(fn.nests.size(), 2u);
}

TEST(Passes, LoopFusionRequiresMatchingShapeClass)
{
    KernelFunction add1 = makeAdd();
    KernelFunction add2 = makeAdd();
    std::vector<BufferInfo> buffers(6);
    for (auto &b : buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    buffers[5].shapeClass = 1; // second output iterates another shape
    std::vector<std::vector<int>> bmaps{{0, 1, 2}, {3, 4, 5}};
    std::vector<std::vector<int>> smaps{{}, {}};
    const KernelFunction *parts[] = {&add1, &add2};
    KernelFunction fn =
        compose("shapes", parts, bmaps, smaps, buffers, 6, 0);
    EXPECT_EQ(fuseLoops(fn), 0);
}

TEST(Passes, ReductionAccumulatorIsALoopFusionBarrier)
{
    // Nest 1 reduces into buffer 2; nest 2 reads buffer 2 (a fused
    // single-point dot + axpy). The accumulator is complete only
    // after the loop, so the nests must stay sequential even though
    // their domains match (regression: caught by the randomized
    // fused-vs-unfused equivalence property).
    KernelFunction fn;
    fn.numArgs = 4; // x, acc, y, out
    fn.buffers.resize(4);
    for (auto &b : fn.buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    fn.buffers[1].shapeClass = 1; // scalar accumulator

    LoopNest dot;
    dot.domainBuf = 0;
    {
        BodyBuilder b(dot.body);
        Reduction red;
        red.accBuf = 1;
        red.op = ReductionOp::Sum;
        red.srcReg = b.load(0);
        dot.reductions.push_back(red);
    }
    LoopNest axpy;
    axpy.domainBuf = 2;
    {
        BodyBuilder b(axpy.body);
        int prod = b.binary(Op::Mul, b.load(1), b.load(2));
        b.store(3, prod);
    }
    fn.nests.push_back(dot);
    fn.nests.push_back(axpy);

    EXPECT_EQ(fuseLoops(fn), 0);
    ASSERT_EQ(fn.nests.size(), 2u);

    // And the sequential execution is numerically right.
    std::vector<double> x{1, 2, 3}, acc{0.0}, y{1, 1, 1}, out(3, 0.0);
    std::vector<BufferBinding> binds{bindVec(x), bindVec(acc),
                                     bindVec(y), bindVec(out)};
    Executor ex;
    ex.run(fn, binds, {});
    EXPECT_EQ(out, (std::vector<double>{6, 6, 6}));
}

TEST(Passes, DeadCodeKeepsExternalStores)
{
    // Stores to external buffers are never dead.
    KernelFunction fn = makeAdd();
    EXPECT_EQ(deadCodeElim(fn), 0);
    EXPECT_EQ(fn.nests[0].body.size(), 4u);
}

TEST(Passes, ForwardingInvalidatedByAliasingStore)
{
    // store %2 (alias 1); store %3 (alias 1); load %2 must NOT be
    // forwarded from the first store.
    KernelFunction fn;
    fn.numArgs = 5;
    fn.buffers.resize(5);
    for (auto &b : fn.buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    fn.buffers[2].aliasClass = 1;
    fn.buffers[3].aliasClass = 1;
    LoopNest nest;
    nest.domainBuf = 4;
    BodyBuilder b(nest.body);
    b.store(2, b.load(0));
    b.store(3, b.load(1));
    int r = b.load(2); // may have been clobbered by store %3
    b.store(4, r);
    fn.nests.push_back(std::move(nest));
    EXPECT_EQ(forwardStores(fn), 0);
}

TEST(Profile, DenseBytesAndFlops)
{
    KernelFunction fn = makeAdd();
    std::vector<double> a(8), b(8), c(8);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(b), bindVec(c)};
    TaskCost cost = profileCost(fn, binds);
    EXPECT_EQ(cost.elements, 8);
    EXPECT_DOUBLE_EQ(cost.bytes, 8.0 * 8.0 * 3.0); // 2 loads + 1 store
    EXPECT_DOUBLE_EQ(cost.wflops, 8.0);
}

TEST(Profile, BroadcastBufferNotCharged)
{
    KernelFunction fn = makeAdd();
    std::vector<double> a(8), s(1), c(8);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(s), bindVec(c)};
    TaskCost cost = profileCost(fn, binds);
    EXPECT_DOUBLE_EQ(cost.bytes, 8.0 * 8.0 * 2.0);
}

TEST(Compiler, StatsAccumulate)
{
    JitCompiler jit;
    auto k1 = jit.compileSingle(makeAdd());
    EXPECT_EQ(jit.stats().kernelsCompiled, 1);
    EXPECT_GT(k1->cost.modeledSeconds, 0.0);
    EXPECT_GE(k1->cost.modeledSeconds, k1->cost.measuredSeconds);
}

TEST(Ir, RegisterCount)
{
    std::vector<Instr> body;
    BodyBuilder b(body);
    int r = b.binary(Op::Add, b.load(0), b.load(1));
    b.store(2, r);
    EXPECT_EQ(registerCount(body), 3);
}

TEST(Ir, FlopWeightsOrdering)
{
    EXPECT_LT(opFlopWeight(Op::Add), opFlopWeight(Op::Div));
    EXPECT_LT(opFlopWeight(Op::Div), opFlopWeight(Op::Exp));
    EXPECT_LT(opFlopWeight(Op::Exp), opFlopWeight(Op::Erf));
    EXPECT_EQ(opFlopWeight(Op::LoadBuf), 0.0);
}

} // namespace
} // namespace kir
} // namespace diffuse
