/**
 * @file
 * Sharded-execution tests: the structured exchange planner
 * (ownersOf), measured exchange volumes of the shard manager
 * (self-owned pieces are free, misaligned reads pull exactly the
 * overlap), Copy-task hazard ordering through the TaskStream, and
 * host readback through gathers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/partition.h"
#include "cunumeric/ndarray.h"
#include "runtime/runtime.h"

namespace diffuse {
namespace {

using num::Context;
using num::NDArray;

// ---------------------------------------------------------------------
// ownersOf: structured (constant-time) owner lookup
// ---------------------------------------------------------------------

std::vector<PieceOverlap>
owners(const PartitionDesc &part, const Rect &domain, const Rect &shape,
       const Rect &query, const std::vector<Rect> *pieces = nullptr)
{
    std::vector<PieceOverlap> out;
    ownersOf(part, domain, shape, query, pieces, out);
    return out;
}

TEST(OwnersOf, Tiling1dCrossingTiles)
{
    // 16 elements tiled by 4 over 4 points; query [3, 9) crosses
    // tiles 0, 1 and 2.
    PartitionDesc part = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(0)), Point(coord_t(16)));
    Rect domain(Point(coord_t(0)), Point(coord_t(4)));
    Rect shape = Rect::fromShape(Point(coord_t(16)));
    auto got = owners(part, domain, shape,
                      Rect(Point(coord_t(3)), Point(coord_t(9))));
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].point, 0);
    EXPECT_EQ(got[0].rect, Rect(Point(coord_t(3)), Point(coord_t(4))));
    EXPECT_EQ(got[1].point, 1);
    EXPECT_EQ(got[1].rect, Rect(Point(coord_t(4)), Point(coord_t(8))));
    EXPECT_EQ(got[2].point, 2);
    EXPECT_EQ(got[2].rect, Rect(Point(coord_t(8)), Point(coord_t(9))));
}

TEST(OwnersOf, TilingRespectsViewOffset)
{
    // A view [2, 14) of a 16-element store, tiled by 6: elements
    // outside the view are owned by nobody.
    PartitionDesc part = PartitionDesc::tiling(
        Point(coord_t(6)), Point(coord_t(2)), Point(coord_t(12)));
    Rect domain(Point(coord_t(0)), Point(coord_t(2)));
    Rect shape = Rect::fromShape(Point(coord_t(16)));
    auto got = owners(part, domain, shape,
                      Rect(Point(coord_t(0)), Point(coord_t(16))));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].rect, Rect(Point(coord_t(2)), Point(coord_t(8))));
    EXPECT_EQ(got[1].rect, Rect(Point(coord_t(8)), Point(coord_t(14))));
    // Query entirely outside the viewed region: empty.
    EXPECT_TRUE(owners(part, domain, shape,
                       Rect(Point(coord_t(0)), Point(coord_t(2))))
                    .empty());
}

TEST(OwnersOf, EmptyIntersection)
{
    PartitionDesc part = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(0)), Point(coord_t(8)));
    Rect domain(Point(coord_t(0)), Point(coord_t(2)));
    Rect shape = Rect::fromShape(Point(coord_t(8)));
    EXPECT_TRUE(owners(part, domain, shape,
                       Rect(Point(coord_t(5)), Point(coord_t(5))))
                    .empty());
}

TEST(OwnersOf, RowTiled2d)
{
    // 8x6 matrix, 1-D launch domain of 4 points selecting row blocks
    // of 2 (PROJ_ROWS_2D). Query rows 3..5 hits points 1 and 2.
    PartitionDesc part =
        PartitionDesc::tiling(Point(2, 6), Point(coord_t(0), 0),
                              Point(coord_t(8), 6), PROJ_ROWS_2D);
    Rect domain(Point(coord_t(0)), Point(coord_t(4)));
    Rect shape = Rect::fromShape(Point(coord_t(8), 6));
    auto got =
        owners(part, domain, shape, Rect(Point(3, 1), Point(5, 4)));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].point, 1);
    EXPECT_EQ(got[0].rect, Rect(Point(3, 1), Point(4, 4)));
    EXPECT_EQ(got[1].point, 2);
    EXPECT_EQ(got[1].rect, Rect(Point(4, 1), Point(5, 4)));
}

TEST(OwnersOf, ImagePartitionFallsBackToPieces)
{
    // Image partitions have no structure: owners come from the
    // runtime's piece list, overlapping pieces both reported.
    PartitionDesc part = PartitionDesc::imagePartition(7);
    Rect domain(Point(coord_t(0)), Point(coord_t(3)));
    Rect shape = Rect::fromShape(Point(coord_t(10)));
    std::vector<Rect> pieces = {
        Rect(Point(coord_t(0)), Point(coord_t(4))),
        Rect(Point(coord_t(3)), Point(coord_t(7))),
        Rect(Point(coord_t(9)), Point(coord_t(9))), // empty
    };
    auto got = owners(part, domain, shape,
                      Rect(Point(coord_t(3)), Point(coord_t(5))),
                      &pieces);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].point, 0);
    EXPECT_EQ(got[0].rect, Rect(Point(coord_t(3)), Point(coord_t(4))));
    EXPECT_EQ(got[1].point, 1);
    EXPECT_EQ(got[1].rect, Rect(Point(coord_t(3)), Point(coord_t(5))));
}

// ---------------------------------------------------------------------
// Measured exchange volumes (Real mode, ranks == gpus)
// ---------------------------------------------------------------------

DiffuseOptions
realOpts(int ranks, bool fused = false)
{
    DiffuseOptions o;
    o.fusionEnabled = fused;
    o.mode = rt::ExecutionMode::Real;
    o.ranks = ranks;
    return o;
}

TEST(ShardExchange, SelfOwnedPiecesNeedNoCopy)
{
    // An aligned chain: every read's piece is the piece the same rank
    // just wrote (or host-initialized data, free everywhere).
    DiffuseRuntime rt(rt::MachineConfig::withGpus(4), realOpts(4));
    Context ctx(rt);
    NDArray x = ctx.random(64, 1);
    NDArray y = ctx.mulScalar(2.0, x);
    NDArray z = ctx.add(y, y);
    NDArray w = ctx.sub(z, y);
    rt.flushWindow();
    (void)w;
    EXPECT_DOUBLE_EQ(rt.runtimeStats().exchangeBytes, 0.0);
    EXPECT_GT(rt.low().shards().stats().hostPulls, 0u);
}

TEST(ShardExchange, MisalignedReadPullsExactOverlap)
{
    // a (size 8, 2 ranks) is task-written through tile 4: rank 0 owns
    // [0,4), rank 1 owns [4,8). t = a[0:6) + a[2:8) is written
    // through tile 3: rank 0 reads a[0,3) and a[2,5), rank 1 reads
    // a[3,6) and a[5,8). Cross-rank overlap: [4,5) and [3,4) — one
    // 8-byte element each.
    DiffuseRuntime rt(rt::MachineConfig::withGpus(2), realOpts(2));
    Context ctx(rt);
    NDArray x = ctx.random(8, 2);
    NDArray a = ctx.mulScalar(1.0, x); // task-written: ranks own tiles
    rt.flushWindow();
    double before = rt.runtimeStats().exchangeBytes;
    EXPECT_DOUBLE_EQ(before, 0.0); // x was host data: free pulls
    NDArray t = ctx.add(a.slice(0, 6), a.slice(2, 8));
    rt.flushWindow();
    EXPECT_DOUBLE_EQ(rt.runtimeStats().exchangeBytes, 16.0);

    // Numerics match the single-allocation path bitwise.
    DiffuseRuntime rt1(rt::MachineConfig::withGpus(2), realOpts(1));
    Context ctx1(rt1);
    NDArray x1 = ctx1.random(8, 2);
    NDArray a1 = ctx1.mulScalar(1.0, x1);
    NDArray t1 = ctx1.add(a1.slice(0, 6), a1.slice(2, 8));
    EXPECT_EQ(ctx.toHost(t), ctx1.toHost(t1));
}

TEST(ShardExchange, RevalidatedGhostIsNotRepulled)
{
    // The same misaligned read twice: the ghost rectangle stays valid
    // at its destination, so the second read moves nothing.
    DiffuseRuntime rt(rt::MachineConfig::withGpus(2), realOpts(2));
    Context ctx(rt);
    NDArray x = ctx.random(8, 3);
    NDArray a = ctx.mulScalar(1.0, x);
    NDArray t = ctx.add(a.slice(0, 6), a.slice(2, 8));
    rt.flushWindow();
    double after_first = rt.runtimeStats().exchangeBytes;
    NDArray u = ctx.add(a.slice(0, 6), a.slice(2, 8));
    rt.flushWindow();
    (void)t;
    (void)u;
    EXPECT_DOUBLE_EQ(rt.runtimeStats().exchangeBytes, after_first);
}

TEST(ShardExchange, OverwriteInvalidatesGhostAndReorders)
{
    // Copy-task hazard ordering, observed through values: a's halo is
    // pulled for a misaligned read, a is then overwritten, and a
    // second misaligned read must re-pull the *new* data. Any hazard
    // mis-ordering (copy before producer, consumer before copy)
    // changes the values.
    auto run = [](int ranks) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(2),
                          realOpts(ranks));
        Context ctx(rt);
        NDArray x = ctx.random(8, 4);
        NDArray a = ctx.mulScalar(1.0, x);
        NDArray t1 = ctx.add(a.slice(0, 6), a.slice(2, 8));
        NDArray a2 = ctx.mulScalar(3.0, x);
        ctx.assign(a, a2); // overwrite every rank's tiles
        NDArray t2 = ctx.add(a.slice(0, 6), a.slice(2, 8));
        std::vector<double> out = ctx.toHost(t1);
        std::vector<double> out2 = ctx.toHost(t2);
        out.insert(out.end(), out2.begin(), out2.end());
        return out;
    };
    auto sharded = run(2);
    auto baseline = run(1);
    EXPECT_EQ(sharded, baseline);
}

TEST(ShardExchange, ReductionGathersAndReplicates)
{
    // dot() reads tiled pieces (self-owned, free) and reduces into a
    // replicated scalar; a later use of the scalar is free. The
    // gather of task-written data into the canonical copy for the
    // *replicated* matvec read below is charged.
    DiffuseRuntime rt(rt::MachineConfig::withGpus(4), realOpts(4));
    Context ctx(rt);
    const coord_t n = 64;
    NDArray x = ctx.random(n, 5);
    NDArray y = ctx.mulScalar(2.0, x); // ranks own tiles of y
    NDArray d = ctx.dot(y, y);
    double before = rt.runtimeStats().exchangeBytes;
    NDArray m = ctx.random2d(8, n, 6);
    NDArray z = ctx.matvec(m, y); // replicated read of y: gather
    rt.flushWindow();
    (void)d;
    (void)z;
    double gathered = rt.runtimeStats().exchangeBytes - before;
    EXPECT_GT(gathered, 0.0);
    EXPECT_LE(gathered, double(n) * 8.0);
    EXPECT_GT(rt.low().shards().stats().gathersPlanned, 0u);
}

TEST(ShardExchange, HostReadbackSeesShardWrites)
{
    // readStoreF64 gathers shard-resident rectangles into the
    // canonical allocation under the fence.
    DiffuseRuntime rt(rt::MachineConfig::withGpus(4), realOpts(4));
    Context ctx(rt);
    NDArray x = ctx.random(32, 7);
    NDArray y = ctx.addScalar(x, 1.5);
    std::vector<double> host_x = ctx.toHost(x);
    std::vector<double> host_y = ctx.toHost(y);
    ASSERT_EQ(host_y.size(), host_x.size());
    for (std::size_t i = 0; i < host_y.size(); i++)
        EXPECT_DOUBLE_EQ(host_y[i], host_x[i] + 1.5);
}

TEST(ShardExchange, CopyTasksAreHazardTracked)
{
    // Stream-level: with sharding active, exchanges appear as Copy
    // tasks in the stream and the single-rank path emits none.
    auto copies = [](int ranks) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(2),
                          realOpts(ranks));
        Context ctx(rt);
        NDArray x = ctx.random(8, 8);
        NDArray a = ctx.mulScalar(1.0, x);
        NDArray t = ctx.add(a.slice(0, 6), a.slice(2, 8));
        rt.flushWindow();
        (void)t;
        return rt.runtimeStats().copyTasks;
    };
    EXPECT_EQ(copies(1), 0u);
    EXPECT_GT(copies(2), 0u);
}

TEST(ShardExchange, InterferingAliasedAssignStaysBitIdentical)
{
    // assign(mid, shifted) makes one point's written piece overlap
    // another point's read piece: the planner must escalate the store
    // to canonical binding, preserving the sequential point order.
    auto run = [](int ranks) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4),
                          realOpts(ranks));
        Context ctx(rt);
        const coord_t n = 64;
        NDArray a = ctx.random(n + 2, 9);
        NDArray mid = a.slice(1, n + 1);
        NDArray left = a.slice(0, n);
        for (int i = 0; i < 3; i++) {
            NDArray s = ctx.mulScalar(0.5, left);
            ctx.assign(mid, s);
        }
        // Shifted self-copy: point p writes a[1+16p, 17+16p) while
        // point p+1 reads a[16(p+1)) — the written element 16p+16 is
        // observable, so the store must bind canonically.
        ctx.assign(mid, left);
        return ctx.toHost(a);
    };
    EXPECT_EQ(run(4), run(1));
}

} // namespace
} // namespace diffuse
