/**
 * @file
 * Randomized fusion-equivalence fuzzer: the differential oracle for
 * the whole execution stack.
 *
 * A seeded generator builds random op DAGs over cunumeric-mini —
 * element-wise chains, scalar-coefficient ops, shifted slices
 * (aliasing views), writes through views (including shifted
 * self-copies whose sequential point order is observable), reductions
 * fed back as scalar coefficients, matvecs, array destruction and
 * mid-stream fences — and replays the *identical* program under every
 * execution configuration: fused/unfused x scalar-oracle/vector x
 * workers 1/8 x ranks 1/4. Every live array must be **bitwise**
 * identical to the reference configuration (unfused, scalar
 * interpreter, one worker, one rank).
 *
 * DIFFUSE_FUZZ_SEEDS selects the number of seeds (default 8; the
 * ctest `slow` configuration runs more). A second suite locks the
 * same property on the real applications (stencil, Black-Scholes,
 * Jacobi, CG, BiCGSTAB, GMG).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "common/env.h"
#include "common/rng.h"
#include "cunumeric/ndarray.h"
#include "solvers/solvers.h"
#include "sparse/csr.h"

namespace diffuse {
namespace {

using num::Context;
using num::NDArray;

/** One execution configuration under test. */
struct Config
{
    bool fused;
    bool scalarExec;
    int workers;
    int ranks;
    /** Trace-memoized window replay (core/trace.h); the reference
     * configuration keeps it off — DIFFUSE_TRACE=0 is the oracle. */
    int trace = 0;
    /** Cross-window pipelining; the reference keeps the draining
     * flush — DIFFUSE_PIPELINE=0 is the oracle. */
    int pipeline = 0;
    /** Horizontal batching of identical trace epochs. The fuzzer runs
     * one session per runtime, so a batched replay always finds an
     * empty census and must take the pass-by fast path bitwise
     * unchanged — DIFFUSE_BATCH=0 is the oracle. */
    int batch = 0;
    /** Native JIT codegen (kernel/codegen.h): retired nests dispatch
     * compiled C instead of the tape interpreter. DIFFUSE_JIT=0 is
     * the bitwise oracle. */
    int jit = 0;

    std::string
    label() const
    {
        return std::string(fused ? "fused" : "unfused") +
               (scalarExec ? "/scalar" : "/vector") + "/w" +
               std::to_string(workers) + "/r" + std::to_string(ranks) +
               "/t" + std::to_string(trace) + "/p" +
               std::to_string(pipeline) + "/b" +
               std::to_string(batch) + "/j" + std::to_string(jit);
    }
};

/** Scoped DIFFUSE_SCALAR_EXEC override. */
struct ScalarGuard
{
    explicit ScalarGuard(bool scalar)
    {
        if (scalar)
            setenv("DIFFUSE_SCALAR_EXEC", "1", 1);
        else
            unsetenv("DIFFUSE_SCALAR_EXEC");
    }
    ~ScalarGuard() { unsetenv("DIFFUSE_SCALAR_EXEC"); }
};

/** Raw bits of a double vector (bitwise comparison: NaN-safe, -0.0
 * distinguished — the oracle is *bit* equality, not ==). */
std::vector<std::uint64_t>
bits(const std::vector<double> &v)
{
    std::vector<std::uint64_t> out(v.size());
    std::memcpy(out.data(), v.data(), v.size() * sizeof(double));
    return out;
}

// ---------------------------------------------------------------------
// Random-program fuzzer
// ---------------------------------------------------------------------

/**
 * Run the seed's program in `rt` and return the bits of every live
 * array. Every random decision depends only on `seed`, so each
 * configuration replays the identical op DAG.
 */
std::vector<std::vector<std::uint64_t>>
runProgramBody(DiffuseRuntime &rt, std::uint64_t seed)
{
    Context ctx(rt);

    Rng rng(seed);
    const coord_t n = 24 + coord_t(rng.below(41)); // 24..64
    std::vector<NDArray> pool;
    for (int i = 0; i < 3; i++) {
        pool.push_back(
            ctx.random(n, seed ^ (0x9e3779b9ULL * std::uint64_t(i + 1)),
                       -1.0, 1.0));
    }

    auto pick = [&]() -> NDArray & {
        return pool[std::size_t(rng.below(pool.size()))];
    };

    int steps = 14 + int(rng.below(12));
    for (int s = 0; s < steps; s++) {
        // Operands are picked in statements of their own: argument
        // evaluation order is compiler-dependent, and the generator
        // must make the same decisions in every configuration.
        switch (rng.below(12)) {
          case 0: {
            NDArray &a = pick();
            NDArray &b = pick();
            pool.push_back(ctx.add(a, b));
            break;
          }
          case 1: {
            NDArray &a = pick();
            NDArray &b = pick();
            pool.push_back(ctx.sub(a, b));
            break;
          }
          case 2: {
            NDArray &a = pick();
            NDArray &b = pick();
            pool.push_back(ctx.mul(a, b));
            break;
          }
          case 3: {
            bool use_max = rng.below(2) == 0;
            NDArray &a = pick();
            NDArray &b = pick();
            pool.push_back(use_max ? ctx.maximum(a, b)
                                   : ctx.minimum(a, b));
            break;
          }
          case 4: {
            NDArray &a = pick();
            double sc = rng.uniform(-2.0, 2.0);
            NDArray &b = pick();
            pool.push_back(ctx.axpy(a, sc, b));
            break;
          }
          case 5: {
            switch (rng.below(4)) {
              case 0:
                pool.push_back(
                    ctx.addScalar(pick(), rng.uniform(-1.0, 1.0)));
                break;
              case 1:
                pool.push_back(
                    ctx.mulScalar(rng.uniform(-1.5, 1.5), pick()));
                break;
              case 2:
                pool.push_back(ctx.neg(pick()));
                break;
              default:
                pool.push_back(ctx.abs(pick()));
                break;
            }
            break;
          }
          case 6:
            // Bounded nonlinearities (erf maps into [-1, 1]; sqrt of
            // abs stays finite).
            pool.push_back(rng.below(2) == 0
                               ? ctx.erf(pick())
                               : ctx.sqrt(ctx.abs(pick())));
            break;
          case 7: {
            // Sliced op: t = a[o1:o1+L] + b[o2:o2+L], then written
            // into a view of an existing array (aliasing write).
            coord_t len = 4 + coord_t(rng.below(std::uint64_t(n - 8)));
            coord_t o1 = coord_t(rng.below(std::uint64_t(n - len + 1)));
            coord_t o2 = coord_t(rng.below(std::uint64_t(n - len + 1)));
            coord_t o3 = coord_t(rng.below(std::uint64_t(n - len + 1)));
            NDArray &a = pick();
            NDArray &b = pick();
            NDArray t =
                ctx.add(a.slice(o1, o1 + len), b.slice(o2, o2 + len));
            NDArray &dst = pick();
            ctx.assign(dst.slice(o3, o3 + len), t);
            break;
          }
          case 8: {
            // Shifted self-copy: the sequential point order is
            // observable through the aliasing views (the canonical-
            // escalation path under sharding).
            NDArray &a = pick();
            if (rng.below(2) == 0)
                ctx.assign(a.slice(1, n), a.slice(0, n - 1));
            else
                ctx.assign(a.slice(0, n - 1), a.slice(1, n));
            break;
          }
          case 9: {
            // Reduction fed back as a scalar coefficient.
            NDArray &a = pick();
            NDArray &b = pick();
            NDArray alpha = rng.below(2) == 0 ? ctx.dot(a, b)
                                              : ctx.sum(a);
            switch (rng.below(3)) {
              case 0:
                pool.push_back(ctx.axpyS(a, alpha, b));
                break;
              case 1:
                pool.push_back(ctx.axmyS(a, alpha, b));
                break;
              default:
                pool.push_back(ctx.aypxS(a, alpha, b));
                break;
            }
            break;
          }
          case 10:
            ctx.fill(pick(), rng.uniform(-1.0, 1.0));
            break;
          default:
            // Mid-stream synchronization: flushes exercise fences and
            // scalar read-back forces an implicit store fence.
            if (rng.below(2) == 0)
                rt.flushWindow();
            else
                (void)ctx.value(ctx.sum(pick()));
            break;
        }
        // Keep the pool bounded; dropping arrays exercises store
        // destruction (including deferred zombie destruction).
        while (pool.size() > 8)
            pool.erase(pool.begin() +
                       std::ptrdiff_t(rng.below(pool.size())));
    }

    rt.flushWindow();
    std::vector<std::vector<std::uint64_t>> out;
    out.reserve(pool.size());
    for (const NDArray &a : pool)
        out.push_back(bits(ctx.toHost(a)));
    return out;
}

/** Fresh-runtime wrapper around runProgramBody. */
std::vector<std::vector<std::uint64_t>>
runProgram(std::uint64_t seed, const Config &cfg)
{
    ScalarGuard guard(cfg.scalarExec);
    DiffuseOptions o;
    o.fusionEnabled = cfg.fused;
    o.mode = rt::ExecutionMode::Real;
    o.workers = cfg.workers;
    o.ranks = cfg.ranks;
    o.trace = cfg.trace;
    o.pipeline = cfg.pipeline;
    o.batch = cfg.batch;
    o.jit = cfg.jit;
    DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
    return runProgramBody(rt, seed);
}

TEST(FusionFuzz, AllConfigurationsBitwiseEqual)
{
    const int seeds = envInt("DIFFUSE_FUZZ_SEEDS", 8, 1, 100000);
    const Config reference{false, true, 1, 1, 0};
    const Config variants[] = {
        {true, false, 1, 1, 1},  // the production configuration
        {true, false, 8, 1, 1},  // + sharded workers
        {true, false, 1, 4, 1},  // + distributed shards
        {true, false, 8, 4, 1},  // workers x ranks
        {false, false, 1, 4, 1}, // unfused over shards
        {true, true, 8, 4, 1},   // scalar oracle over shards
        {true, false, 8, 4, 0},  // trace kill switch over the rest
        // Cross-window pipelining over the heavy configurations —
        // replayed, analyzed, and trace-off epochs all overlap the
        // previous window's retirement, yet must stay bitwise equal
        // to the draining reference.
        {true, false, 8, 4, 1, 1},
        {true, false, 8, 1, 0, 1},
        {false, false, 1, 4, 1, 1},
        // Batched replay in a solo session: the coalescer's census
        // sees one replayer, so every retired task takes the pass-by
        // path — the knob must be a bitwise no-op without siblings.
        {true, false, 8, 4, 1, 0, 1},
        {true, false, 8, 4, 1, 1, 1},
        // Native JIT codegen stacked over the heaviest configuration:
        // compiled nests must stay bitwise equal to the interpreter
        // (the in-process module registry keeps repeat tapes to one
        // toolchain invocation each across the whole run).
        {true, false, 8, 4, 1, 1, 0, 1},
    };
    for (int s = 0; s < seeds; s++) {
        std::uint64_t seed = 0xD1FFu + std::uint64_t(s) * 7919;
        auto expect = runProgram(seed, reference);
        for (const Config &cfg : variants) {
            auto got = runProgram(seed, cfg);
            ASSERT_EQ(got.size(), expect.size())
                << "seed " << seed << " config " << cfg.label();
            for (std::size_t i = 0; i < got.size(); i++) {
                ASSERT_EQ(got[i], expect[i])
                    << "seed " << seed << " config " << cfg.label()
                    << " array " << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fault dimension: the same seeded DAGs under injected faults. The
// transparently-degrading kinds (exchange retry, compile → scalar,
// trace → analyzed path) must stay bitwise-identical with no error
// surfaced; a hard kernel fault must surface structurally, and after
// resetAfterError() a clean re-run of the whole program in the same
// runtime must be bitwise-identical to a never-faulted run.
// ---------------------------------------------------------------------

TEST(FusionFuzz, TransparentFaultsKeepBitwiseEquality)
{
    const int seeds = envInt("DIFFUSE_FUZZ_SEEDS", 8, 1, 100000);
    const Config production{true, false, 8, 4, 1};
    const unsigned transparent =
        (1u << unsigned(rt::FaultKind::Exchange)) |
        (1u << unsigned(rt::FaultKind::Compile)) |
        (1u << unsigned(rt::FaultKind::Trace));
    for (int s = 0; s < seeds; s++) {
        std::uint64_t seed = 0xFA17 + std::uint64_t(s) * 7919;
        auto expect = runProgram(seed, production);
        DiffuseOptions o;
        o.mode = rt::ExecutionMode::Real;
        o.workers = production.workers;
        o.ranks = production.ranks;
        o.trace = production.trace;
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        // 5% ambient rate on the degrading kinds only.
        rt.low().faults().configure(seed, 500, transparent);
        auto got = runProgramBody(rt, seed);
        ASSERT_EQ(got, expect) << "seed " << seed;
        EXPECT_FALSE(rt.failed()) << "seed " << seed;
    }
}

TEST(FusionFuzz, HardFaultRecoveryRerunsBitwise)
{
    const int seeds = envInt("DIFFUSE_FUZZ_SEEDS", 8, 1, 100000);
    const Config production{true, false, 8, 4, 1};
    for (int s = 0; s < seeds; s++) {
        std::uint64_t seed = 0xDEAD + std::uint64_t(s) * 7919;
        auto expect = runProgram(seed, production);
        DiffuseOptions o;
        o.mode = rt::ExecutionMode::Real;
        o.workers = production.workers;
        o.ranks = production.ranks;
        o.trace = production.trace;
        // Pinned to the draining flush: the test asserts the raw
        // KernelFault code at the failing flush, which pipelining
        // would defer and re-wrap at the next synchronizing read
        // (that surfacing is covered in test_scheduler.cc).
        o.pipeline = 0;
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        // Fusion can collapse a whole program into very few fused
        // kernels (sometimes a single one), so the only skip that is
        // guaranteed to land for every generated program is 0: at
        // least one kernel must retire to produce the consumed sums.
        rt.low().faults().armOneShot(rt::FaultKind::Kernel, /*skip=*/0);
        bool threw = false;
        try {
            (void)runProgramBody(rt, seed);
        } catch (const DiffuseError &e) {
            threw = true;
            EXPECT_EQ(e.code(), ErrorCode::KernelFault)
                << "seed " << seed;
            rt.resetAfterError();
        }
        ASSERT_TRUE(threw) << "seed " << seed;
        ASSERT_FALSE(rt.failed()) << "seed " << seed;
        auto got = runProgramBody(rt, seed);
        ASSERT_EQ(got, expect) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Trace-replay fuzzing: a seeded loop body executed repeatedly in one
// runtime must replay from the trace cache bitwise-identically to the
// DIFFUSE_TRACE=0 oracle
// ---------------------------------------------------------------------

DiffuseOptions
loopProgramOptions(std::uint64_t seed, int trace)
{
    DiffuseOptions o;
    o.mode = rt::ExecutionMode::Real;
    o.trace = trace;
    o.ranks = int(1 + seed % 3); // 1..3: exercise exchange replay too
    return o;
}

/**
 * Run a seeded loop body `reps` times in `rt` and return the bits of
 * the persistent arrays. The op list is drawn once per seed, so every
 * repetition submits an isomorphic event stream (with loop-variant
 * scalar coefficients) — the steady state the trace layer exists for.
 */
std::vector<std::vector<std::uint64_t>>
runLoopBody(DiffuseRuntime &rt, std::uint64_t seed)
{
    Context ctx(rt);

    Rng rng(seed);
    const coord_t n = 24 + coord_t(rng.below(17));
    NDArray a = ctx.random(n, seed ^ 0x5eedULL, -1.0, 1.0);
    NDArray b = ctx.random(n, seed ^ 0xfeedULL, -1.0, 1.0);

    const int steps = 6 + int(rng.below(6));
    std::vector<int> ops;
    std::vector<double> coef;
    for (int s = 0; s < steps; s++) {
        ops.push_back(int(rng.below(6)));
        coef.push_back(rng.uniform(-1.0, 1.0));
    }

    for (int rep = 0; rep < 3; rep++) {
        for (int s = 0; s < steps; s++) {
            switch (ops[std::size_t(s)]) {
              case 0: {
                NDArray t = ctx.add(a, b);
                ctx.assign(a, t);
                break;
              }
              case 1: {
                NDArray t = ctx.mulScalar(coef[std::size_t(s)], b);
                ctx.assign(b, t);
                break;
              }
              case 2: {
                // Loop-variant coefficient: replay must rebind it.
                NDArray t = ctx.axpy(
                    a, coef[std::size_t(s)] / double(rep + 1), b);
                ctx.assign(a, t);
                break;
              }
              case 3:
                ctx.assign(a.slice(1, n), b.slice(0, n - 1));
                break;
              case 4: {
                NDArray alpha = ctx.dot(a, b);
                NDArray t = ctx.axpyS(a, alpha, b);
                ctx.assign(b, t);
                break;
              }
              default:
                (void)ctx.value(ctx.sum(a)); // mid-body flush
                break;
            }
        }
        rt.flushWindow();
    }
    return {bits(ctx.toHost(a)), bits(ctx.toHost(b))};
}

/** Fresh-runtime wrapper around runLoopBody (the historical shape).
 * `replays_out` accumulates replayed epochs. */
std::vector<std::vector<std::uint64_t>>
runLoopProgram(std::uint64_t seed, int trace,
               std::uint64_t *replays_out)
{
    DiffuseRuntime rt(rt::MachineConfig::withGpus(4),
                      loopProgramOptions(seed, trace));
    auto out = runLoopBody(rt, seed);
    if (replays_out)
        *replays_out += rt.fusionStats().traceEpochsReplayed;
    return out;
}

TEST(FusionFuzz, RepeatedBodiesReplayBitwise)
{
    const int seeds = envInt("DIFFUSE_FUZZ_SEEDS", 8, 1, 100000);
    std::uint64_t replays = 0;
    for (int s = 0; s < seeds; s++) {
        std::uint64_t seed = 0x7ace + std::uint64_t(s) * 7919;
        auto expect = runLoopProgram(seed, /*trace=*/0, nullptr);
        auto got = runLoopProgram(seed, /*trace=*/1, &replays);
        ASSERT_EQ(got, expect) << "seed " << seed;
    }
    // Repetition two and three of every seed hit the cache; across
    // the whole run replays must have happened.
    EXPECT_GT(replays, 0u);
}

// ---------------------------------------------------------------------
// Shared-cache dimension (core/context.h): two sequential sessions
// over the same seeded DAG must be bitwise-identical to one
// fresh-runtime run, with the second session fully reusing the
// first's compiled plans and trace epochs
// ---------------------------------------------------------------------

TEST(FusionFuzz, SharedCacheSessionsBitwiseEqualAndFullyReused)
{
    const int seeds = envInt("DIFFUSE_FUZZ_SEEDS", 8, 1, 100000);
    for (int s = 0; s < seeds; s++) {
        std::uint64_t seed = 0x5ca1e + std::uint64_t(s) * 7919;
        DiffuseOptions o = loopProgramOptions(seed, /*trace=*/1);
        // Sharing is what this test asserts: pin it against the
        // DIFFUSE_SHARED_CACHE=0 environment matrix.
        o.sharedCache = 1;

        // One fresh, isolated runtime: the reference.
        std::vector<std::vector<std::uint64_t>> expect;
        {
            DiffuseRuntime iso(rt::MachineConfig::withGpus(4), o);
            expect = runLoopBody(iso, seed);
        }

        auto ctx = SharedContext::create(rt::MachineConfig::withGpus(4));
        auto s1 = ctx->createSession(o);
        auto got1 = runLoopBody(*s1, seed);
        ASSERT_EQ(got1, expect) << "seed " << seed << " session 1";

        int plans = ctx->compiler().stats().plansLowered;
        std::uint64_t misses = ctx->memo().stats().misses;
        std::uint64_t hits = ctx->memo().stats().hits;

        auto s2 = ctx->createSession(o);
        auto got2 = runLoopBody(*s2, seed);
        ASSERT_EQ(got2, expect) << "seed " << seed << " session 2";

        // Full reuse: the second session lowered no plans, never
        // missed the memoizer, captured no new epochs — every window
        // that took the analyzed path hit, and repeated windows
        // replayed from the epochs session 1 stored.
        EXPECT_EQ(ctx->compiler().stats().plansLowered, plans)
            << "seed " << seed;
        EXPECT_EQ(ctx->memo().stats().misses, misses)
            << "seed " << seed;
        EXPECT_GE(ctx->memo().stats().hits, hits) << "seed " << seed;
        EXPECT_EQ(s2->fusionStats().traceEpochsCaptured, 0u)
            << "seed " << seed;
        EXPECT_GT(s2->fusionStats().traceEpochsReplayed, 0u)
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Application determinism: every app, bitwise, ranks 1 vs 4 and
// workers 1 vs 8
// ---------------------------------------------------------------------

DiffuseOptions
appOpts(int workers, int ranks)
{
    DiffuseOptions o;
    o.mode = rt::ExecutionMode::Real;
    o.workers = workers;
    o.ranks = ranks;
    return o;
}

template <typename Run>
void
expectAppDeterminism(Run &&run)
{
    auto expect = run(appOpts(1, 1));
    const int cases[][2] = {{8, 1}, {1, 4}, {8, 4}};
    for (const auto &c : cases) {
        auto got = run(appOpts(c[0], c[1]));
        ASSERT_EQ(bits(got), bits(expect))
            << "workers " << c[0] << " ranks " << c[1];
    }
}

TEST(AppDeterminism, Stencil)
{
    expectAppDeterminism([](const DiffuseOptions &o) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        Context ctx(rt);
        apps::Stencil app(ctx, 48);
        for (int i = 0; i < 3; i++) {
            app.step();
            rt.flushWindow();
        }
        return ctx.toHost(app.grid());
    });
}

TEST(AppDeterminism, BlackScholes)
{
    expectAppDeterminism([](const DiffuseOptions &o) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        Context ctx(rt);
        apps::BlackScholes app(ctx, 64);
        app.step();
        rt.flushWindow();
        std::vector<double> out = ctx.toHost(app.call());
        std::vector<double> put = ctx.toHost(app.put());
        out.insert(out.end(), put.begin(), put.end());
        return out;
    });
}

TEST(AppDeterminism, Jacobi)
{
    expectAppDeterminism([](const DiffuseOptions &o) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        Context ctx(rt);
        apps::Jacobi app(ctx, 64);
        for (int i = 0; i < 3; i++) {
            app.step();
            rt.flushWindow();
        }
        return ctx.toHost(app.x());
    });
}

TEST(AppDeterminism, Cg)
{
    expectAppDeterminism([](const DiffuseOptions &o) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        Context ctx(rt);
        sp::SparseContext sctx(ctx);
        solvers::SolverContext sol(ctx, sctx);
        sp::CsrMatrix a = sctx.poisson2d(8, 8);
        NDArray b = ctx.zeros(64, 1.0);
        double rs = 0.0;
        NDArray x = sol.cg(a, b, 12, &rs);
        std::vector<double> out = ctx.toHost(x);
        out.push_back(rs);
        return out;
    });
}

TEST(AppDeterminism, Bicgstab)
{
    expectAppDeterminism([](const DiffuseOptions &o) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        Context ctx(rt);
        sp::SparseContext sctx(ctx);
        solvers::SolverContext sol(ctx, sctx);
        sp::CsrMatrix a = sctx.poisson2d(8, 8);
        NDArray b = ctx.zeros(64, 1.0);
        double rs = 0.0;
        NDArray x = sol.bicgstab(a, b, 8, &rs);
        std::vector<double> out = ctx.toHost(x);
        out.push_back(rs);
        return out;
    });
}

TEST(AppDeterminism, Gmg)
{
    expectAppDeterminism([](const DiffuseOptions &o) {
        DiffuseRuntime rt(rt::MachineConfig::withGpus(4), o);
        Context ctx(rt);
        sp::SparseContext sctx(ctx);
        solvers::SolverContext sol(ctx, sctx);
        solvers::GmgHierarchy h = sol.buildHierarchy1d(64, 3);
        NDArray b = ctx.zeros(64, 1.0);
        double rs = 0.0;
        NDArray x = sol.gmgPcg(h, b, 6, &rs);
        std::vector<double> out = ctx.toHost(x);
        out.push_back(rs);
        return out;
    });
}

} // namespace
} // namespace diffuse
