/**
 * @file
 * Unit tests for the integer geometry primitives.
 */

#include <gtest/gtest.h>

#include "common/geometry.h"
#include "common/rng.h"

namespace diffuse {
namespace {

TEST(Point, ConstructionAndArithmetic)
{
    Point a(3, 4);
    Point b(1, 2);
    EXPECT_EQ(a.dim, 2);
    EXPECT_EQ((a + b)[0], 4);
    EXPECT_EQ((a + b)[1], 6);
    EXPECT_EQ((a - b)[0], 2);
    EXPECT_EQ((a * b)[1], 8);
    EXPECT_EQ(a.volume(), 12);
    EXPECT_EQ(Point::zero(3).volume(), 0);
    EXPECT_EQ(Point::one(3).volume(), 1);
}

TEST(Point, Equality)
{
    EXPECT_EQ(Point(1, 2), Point(1, 2));
    EXPECT_NE(Point(1, 2), Point(2, 1));
    EXPECT_NE(Point(coord_t(1)), Point(1, 0));
}

TEST(Rect, VolumeAndEmpty)
{
    Rect r(Point(0, 0), Point(4, 4));
    EXPECT_EQ(r.volume(), 16);
    EXPECT_FALSE(r.empty());
    Rect e(Point(2, 2), Point(2, 5));
    EXPECT_TRUE(e.empty());
    EXPECT_EQ(e.volume(), 0);
}

TEST(Rect, Contains)
{
    Rect r(Point(1, 1), Point(4, 4));
    EXPECT_TRUE(r.contains(Point(1, 1)));
    EXPECT_TRUE(r.contains(Point(3, 3)));
    EXPECT_FALSE(r.contains(Point(4, 3)));
    EXPECT_TRUE(r.contains(Rect(Point(2, 2), Point(3, 3))));
    EXPECT_FALSE(r.contains(Rect(Point(0, 0), Point(2, 2))));
}

TEST(Rect, Intersect)
{
    Rect a(Point(0, 0), Point(4, 4));
    Rect b(Point(2, 2), Point(6, 6));
    Rect c = a.intersect(b);
    EXPECT_EQ(c, Rect(Point(2, 2), Point(4, 4)));
    Rect d = a.intersect(Rect(Point(5, 5), Point(7, 7)));
    EXPECT_TRUE(d.empty());
}

TEST(Rect, FromShape)
{
    Rect r = Rect::fromShape(Point(3, 5));
    EXPECT_EQ(r.lo, Point::zero(2));
    EXPECT_EQ(r.volume(), 15);
}

TEST(PointIterator, RowMajorOrder)
{
    Rect r(Point(0, 0), Point(2, 3));
    std::vector<Point> pts;
    for (PointIterator it(r); it.valid(); it.step())
        pts.push_back(*it);
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_EQ(pts[0], Point(0, 0));
    EXPECT_EQ(pts[1], Point(0, 1));
    EXPECT_EQ(pts[3], Point(1, 0));
    EXPECT_EQ(pts[5], Point(1, 2));
}

TEST(PointIterator, EmptyRect)
{
    Rect r(Point(0, 0), Point(0, 3));
    PointIterator it(r);
    EXPECT_FALSE(it.valid());
}

TEST(Linearize, RoundTrip)
{
    Rect r(Point(2, 3), Point(6, 9));
    for (PointIterator it(r); it.valid(); it.step()) {
        coord_t idx = linearize(r, *it);
        EXPECT_EQ(delinearize(r, idx), *it);
    }
    EXPECT_EQ(linearize(r, r.lo), 0);
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++) {
        double x = a.uniform();
        EXPECT_EQ(x, b.uniform());
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
    Rng c(7);
    for (int i = 0; i < 100; i++) {
        double v = c.uniform(3.0, 5.0);
        EXPECT_GE(v, 3.0);
        EXPECT_LT(v, 5.0);
    }
}

} // namespace
} // namespace diffuse
