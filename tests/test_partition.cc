/**
 * @file
 * Unit tests for structured partitions: the sub-store bounds formula
 * of paper Fig 3, constant-time equality, coverage, and shape-class
 * keys.
 */

#include <gtest/gtest.h>

#include "core/fusion.h"
#include "core/partition.h"

namespace diffuse {
namespace {

TEST(Partition, Fig3aTwoByTwoTiling)
{
    // 2x2 tiling of a 4x4 store over a 2x2 launch domain.
    Rect store = Rect::fromShape(Point(4, 4));
    PartitionDesc p = PartitionDesc::tiling(
        Point(2, 2), Point::zero(2), Point(4, 4), PROJ_IDENTITY);
    EXPECT_EQ(p.boundsFor(Point(0, 0), store),
              Rect(Point(0, 0), Point(2, 2)));
    EXPECT_EQ(p.boundsFor(Point(1, 1), store),
              Rect(Point(2, 2), Point(4, 4)));
    EXPECT_EQ(p.boundsFor(Point(0, 1), store),
              Rect(Point(0, 2), Point(2, 4)));
}

TEST(Partition, Fig3bRowTiling)
{
    // 1x4 tiles over a 4x1 domain: row blocks.
    Rect store = Rect::fromShape(Point(4, 4));
    PartitionDesc p = PartitionDesc::tiling(
        Point(1, 4), Point::zero(2), Point(4, 4), PROJ_IDENTITY);
    for (coord_t i = 0; i < 4; i++) {
        EXPECT_EQ(p.boundsFor(Point(i, coord_t(0)), store),
                  Rect(Point(i, coord_t(0)), Point(i + 1, coord_t(4))));
    }
}

TEST(Partition, Fig3cOffsetTiling)
{
    // 1x1 tiles offset by (1,1): a partition of a subset of the store.
    Rect store = Rect::fromShape(Point(4, 4));
    PartitionDesc p = PartitionDesc::tiling(
        Point(1, 1), Point(1, 1), Point(2, 2), PROJ_IDENTITY);
    EXPECT_EQ(p.boundsFor(Point(0, 0), store),
              Rect(Point(1, 1), Point(2, 2)));
    EXPECT_EQ(p.boundsFor(Point(1, 1), store),
              Rect(Point(2, 2), Point(3, 3)));
}

TEST(Partition, Fig3dAliasedProjection)
{
    // A vector tiled over a 2-D domain with a projection dropping the
    // second coordinate: points (p, *) all map to the same sub-store.
    Rect store = Rect::fromShape(Point(coord_t(4)));
    PartitionDesc p = PartitionDesc::tiling(
        Point(coord_t(2)), Point::zero(1), Point(coord_t(4)),
        PROJ_DROP_COL);
    EXPECT_EQ(p.boundsFor(Point(0, 0), store),
              Rect(Point(coord_t(0)), Point(coord_t(2))));
    EXPECT_EQ(p.boundsFor(Point(0, 1), store),
              p.boundsFor(Point(0, 0), store));
    EXPECT_EQ(p.boundsFor(Point(1, 0), store),
              Rect(Point(coord_t(2)), Point(coord_t(4))));
}

TEST(Partition, RowsProjectionFor1dLaunchOver2dStore)
{
    Rect store = Rect::fromShape(Point(8, 6));
    PartitionDesc p = PartitionDesc::tiling(
        Point(2, 6), Point::zero(2), Point(8, 6), PROJ_ROWS_2D);
    EXPECT_EQ(p.boundsFor(Point(coord_t(0)), store),
              Rect(Point(0, 0), Point(2, 6)));
    EXPECT_EQ(p.boundsFor(Point(coord_t(3)), store),
              Rect(Point(6, 0), Point(8, 6)));
}

TEST(Partition, ClampingAtStoreEdge)
{
    // 7 elements over 4 points with tile 2: last tile is short, and a
    // fifth point would be empty.
    Rect store = Rect::fromShape(Point(coord_t(7)));
    PartitionDesc p = PartitionDesc::tiling(
        Point(coord_t(2)), Point::zero(1), Point(coord_t(7)),
        PROJ_IDENTITY);
    EXPECT_EQ(p.boundsFor(Point(coord_t(3)), store).volume(), 1);
    EXPECT_EQ(p.boundsFor(Point(coord_t(4)), store).volume(), 0);
}

TEST(Partition, ConstantTimeEquality)
{
    PartitionDesc a = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(1)), Point(coord_t(16)));
    PartitionDesc b = a;
    EXPECT_EQ(a, b);
    b.offset = Point(coord_t(2));
    EXPECT_NE(a, b); // shifted views are different partitions
    EXPECT_NE(PartitionDesc::none(), a);
    EXPECT_EQ(PartitionDesc::none(), PartitionDesc::none());
    EXPECT_NE(PartitionDesc::imagePartition(1),
              PartitionDesc::imagePartition(2));
    EXPECT_EQ(PartitionDesc::imagePartition(3),
              PartitionDesc::imagePartition(3));
}

TEST(Partition, StructuralHashDiscriminates)
{
    PartitionDesc a = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(0)), Point(coord_t(16)));
    PartitionDesc b = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(1)), Point(coord_t(16)));
    EXPECT_NE(a.structuralHash(), b.structuralHash());
    EXPECT_EQ(a.structuralHash(), a.structuralHash());
}

TEST(Partition, CoversDetectsFullAndPartialTilings)
{
    Rect store = Rect::fromShape(Point(coord_t(16)));
    Rect domain(Point(coord_t(0)), Point(coord_t(4)));
    PartitionDesc full = PartitionDesc::tiling(
        Point(coord_t(4)), Point::zero(1), Point(coord_t(16)));
    EXPECT_TRUE(FusionPlanner::covers(full, store, domain));

    PartitionDesc offset = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(1)), Point(coord_t(14)));
    EXPECT_FALSE(FusionPlanner::covers(offset, store, domain));

    // Too few points to cover the store.
    Rect small_domain(Point(coord_t(0)), Point(coord_t(2)));
    EXPECT_FALSE(FusionPlanner::covers(full, store, small_domain));

    EXPECT_TRUE(FusionPlanner::covers(PartitionDesc::none(), store,
                                      domain));
}

TEST(Partition, ShapeClassKeyIgnoresOffsetButNotExtent)
{
    Rect store = Rect::fromShape(Point(coord_t(18)));
    PartitionDesc a = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(0)), Point(coord_t(16)));
    PartitionDesc b = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(2)), Point(coord_t(16)));
    PartitionDesc c = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(0)), Point(coord_t(14)));
    // Same tile + extent, different offset: same per-point extents.
    EXPECT_EQ(a.shapeClassKey(store), b.shapeClassKey(store));
    // Different view extent: different piece shapes.
    EXPECT_NE(a.shapeClassKey(store), c.shapeClassKey(store));
}

TEST(Partition, LayoutKeyIncludesDomain)
{
    PartitionDesc a = PartitionDesc::tiling(
        Point(coord_t(4)), Point(coord_t(0)), Point(coord_t(16)));
    Rect d1(Point(coord_t(0)), Point(coord_t(4)));
    Rect d2(Point(coord_t(0)), Point(coord_t(8)));
    EXPECT_NE(layoutKeyFor(a, d1), layoutKeyFor(a, d2));
    EXPECT_EQ(layoutKeyFor(a, d1), layoutKeyFor(a, d1));
    // Reserved values are never produced.
    EXPECT_GE(layoutKeyFor(a, d1), 2u);
}

} // namespace
} // namespace diffuse
