/**
 * @file
 * Differential battery for the native JIT backend (kernel/codegen.h):
 * every Op, every addressing class (contiguous / strided / broadcast /
 * transposed-stride), strip widths 1, 3 and 256, and domain sizes that
 * are not strip multiples — replayed bitwise against BOTH the tape
 * interpreter and the scalar oracle. Plus the degradation ladder:
 * per-nest fallback for inexpressible nests, whole-kernel fallback on
 * toolchain failure, and structural checks on the generated C source
 * (two-rounding-step triads, function-table transcendentals).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "kernel/codegen.h"
#include "kernel/compiler.h"
#include "kernel/exec.h"
#include "kernel/ir.h"
#include "kernel/plan.h"

namespace diffuse {
namespace kir {
namespace {

const int kStrips[] = {1, 3, 256};

/** Bitwise comparison of two double vectors. */
::testing::AssertionResult
bitEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "size mismatch";
    for (std::size_t i = 0; i < a.size(); i++) {
        if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
            return ::testing::AssertionFailure()
                   << "element " << i << ": " << a[i] << " vs " << b[i];
        }
    }
    return ::testing::AssertionSuccess();
}

BufferBinding
bindVec(std::vector<double> &v)
{
    BufferBinding b;
    b.base = v.data();
    b.dims = 1;
    b.extent[0] = coord_t(v.size());
    b.stride[0] = 1;
    return b;
}

/** Deterministic quasi-random fill, including negatives and zeros. */
void
fill(std::vector<double> &v, int seed)
{
    for (std::size_t i = 0; i < v.size(); i++) {
        double x = std::sin(double(i * 37 + seed * 101)) * 3.0;
        if (i % 13 == 0)
            x = 0.0;
        v[i] = x;
    }
}

/** Distinct canonical key per attach (the runtime feeds memoizer
 * encodings; the backend only requires uniqueness per kernel). */
std::string
nextKey()
{
    static int n = 0;
    return "jit_test_key_" + std::to_string(n++);
}

/** A backend in memory-only mode, isolated from the process-global
 * module registry so each test observes its own compiles. */
JitBackend
makeBackend()
{
    JitBackend::Config cfg;
    cfg.shareProcessModules = false;
    return JitBackend(cfg);
}

/** Lower `fn` at `w` and attach a JIT module. */
CompiledKernel
jitKernel(JitBackend &be, const KernelFunction &fn, int w)
{
    CompiledKernel k;
    k.fn = fn;
    k.plan = std::make_shared<const ExecutablePlan>(lowerPlan(fn, w));
    be.attach(nextKey(), k);
    return k;
}

/** A body exercising every opcode (mirrors the vector-executor
 * battery: each op's result feeds the output, domains kept finite). */
KernelFunction
makeEveryOpKernel(int dims)
{
    KernelFunction fn;
    fn.name = "every_op";
    fn.numArgs = 3; // in0, in1, out
    fn.numScalars = 1;
    fn.buffers.resize(3);
    for (auto &b : fn.buffers) {
        b.dims = dims;
        b.shapeClass = 0;
    }
    LoopNest nest;
    nest.domainBuf = 2;
    BodyBuilder b(nest.body);
    int x = b.load(0);
    int y = b.load(1);
    int s = b.scalar(0);
    int c = b.constant(1.25);
    int add = b.binary(Op::Add, x, y);
    int sub = b.binary(Op::Sub, add, s);
    int mul = b.binary(Op::Mul, sub, c);
    int div = b.binary(Op::Div, mul, b.constant(3.0));
    int mx = b.binary(Op::Max, div, x);
    int mn = b.binary(Op::Min, mx, y);
    int abs = b.unary(Op::Abs, mn);
    int pw = b.binary(Op::Pow, abs, c);
    int ng = b.unary(Op::Neg, pw);
    int sq = b.unary(Op::Sqrt, abs);
    int ex = b.unary(Op::Exp, mn);
    int lg = b.unary(Op::Log, ex);
    int er = b.unary(Op::Erf, lg);
    int lt = b.binary(Op::CmpLt, x, y);
    int gt = b.binary(Op::CmpGt, x, y);
    int sel = b.select(lt, ng, sq);
    int sel2 = b.select(gt, sel, er);
    int cp = b.unary(Op::Copy, sel2);
    b.store(2, cp);
    fn.nests.push_back(std::move(nest));
    return fn;
}

/**
 * Run `fn` three ways — scalar oracle, tape interpreter, JIT — at
 * every strip width and compare the full output allocations bitwise.
 * Requires the JIT to actually engage (module attached with a live
 * entry point for nest 0): a silently falling-back battery would test
 * nothing.
 */
void
expectTripleMatch(const KernelFunction &fn,
                  std::vector<BufferBinding> binds,
                  std::vector<double> &out_alloc,
                  std::span<const double> scalars,
                  const std::vector<double> &out_init)
{
    Executor ex;
    out_alloc = out_init;
    ex.runScalar(fn, binds, scalars);
    std::vector<double> want = out_alloc;

    JitBackend be = makeBackend();
    for (int w : kStrips) {
        ExecutablePlan plan = lowerPlan(fn, w);
        out_alloc = out_init;
        ex.run(fn, plan, binds, scalars);
        EXPECT_TRUE(bitEqual(out_alloc, want))
            << "interpreter, strip width " << w;

        CompiledKernel k = jitKernel(be, fn, w);
        ASSERT_NE(k.jit, nullptr) << "strip width " << w;
        ASSERT_NE(k.jit->nest(0), nullptr) << "strip width " << w;
        out_alloc = out_init;
        ex.run(fn, *k.plan, binds, scalars, k.jit.get());
        EXPECT_TRUE(bitEqual(out_alloc, want))
            << "jit, strip width " << w;
    }
    EXPECT_EQ(be.stats().compileFailures, 0u);
}

TEST(JitCodegen, EveryOpContiguous1d)
{
    KernelFunction fn = makeEveryOpKernel(1);
    const coord_t n = 777; // not a multiple of 1, 3 or 256
    std::vector<double> a(n), b(n), out(n, 0.0);
    fill(a, 1);
    fill(b, 2);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(b),
                                     bindVec(out)};
    double scal = 0.75;
    expectTripleMatch(fn, binds, out, std::span(&scal, 1),
                      std::vector<double>(n, 0.0));
}

TEST(JitCodegen, EveryOpStrided1d)
{
    KernelFunction fn = makeEveryOpKernel(1);
    const coord_t n = 257;
    std::vector<double> a(3 * n), b(2 * n), out(4 * n, -7.5);
    fill(a, 3);
    fill(b, 4);
    BufferBinding ba = bindVec(a);
    ba.extent[0] = n;
    ba.stride[0] = 3;
    BufferBinding bb = bindVec(b);
    bb.extent[0] = n;
    bb.stride[0] = 2;
    BufferBinding bo = bindVec(out);
    bo.extent[0] = n;
    bo.stride[0] = 4;
    double scal = -0.5;
    expectTripleMatch(fn, {ba, bb, bo}, out, std::span(&scal, 1),
                      std::vector<double>(4 * n, -7.5));
}

TEST(JitCodegen, EveryOpBroadcast1d)
{
    KernelFunction fn = makeEveryOpKernel(1);
    const coord_t n = 1000;
    std::vector<double> a(n), s{2.5}, out(n, 0.0);
    fill(a, 5);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(s),
                                     bindVec(out)};
    double scal = 1.5;
    expectTripleMatch(fn, binds, out, std::span(&scal, 1),
                      std::vector<double>(n, 0.0));
}

TEST(JitCodegen, EveryOp2dRowMajorAndBroadcastColumn)
{
    KernelFunction fn = makeEveryOpKernel(2);
    const coord_t rows = 5, cols = 13; // cols not a strip multiple
    std::vector<double> a(rows * cols), col(rows), out(rows * cols, 0.0);
    fill(a, 6);
    fill(col, 7);
    BufferBinding ba;
    ba.base = a.data();
    ba.dims = 2;
    ba.extent[0] = rows;
    ba.extent[1] = cols;
    ba.stride[0] = cols;
    ba.stride[1] = 1;
    BufferBinding bc; // extent-1 inner dim: broadcast along columns
    bc.base = col.data();
    bc.dims = 2;
    bc.extent[0] = rows;
    bc.extent[1] = 1;
    bc.stride[0] = 1;
    bc.stride[1] = 0;
    BufferBinding bo = ba;
    bo.base = out.data();
    double scal = 0.25;
    expectTripleMatch(fn, {ba, bc, bo}, out, std::span(&scal, 1),
                      std::vector<double>(rows * cols, 0.0));
}

TEST(JitCodegen, EveryOp2dTransposedStride)
{
    KernelFunction fn = makeEveryOpKernel(2);
    const coord_t rows = 7, cols = 11;
    // `a` is a transposed view: the inner loop walks stride `rows`.
    std::vector<double> parent(rows * cols), b(rows * cols),
        out(rows * cols, 0.0);
    fill(parent, 8);
    fill(b, 9);
    BufferBinding ba;
    ba.base = parent.data();
    ba.dims = 2;
    ba.extent[0] = rows;
    ba.extent[1] = cols;
    ba.stride[0] = 1;
    ba.stride[1] = rows;
    BufferBinding bb;
    bb.base = b.data();
    bb.dims = 2;
    bb.extent[0] = rows;
    bb.extent[1] = cols;
    bb.stride[0] = cols;
    bb.stride[1] = 1;
    BufferBinding bo = ba; // transposed-stride store target
    bo.base = out.data();
    double scal = 2.0;
    expectTripleMatch(fn, {ba, bb, bo}, out, std::span(&scal, 1),
                      std::vector<double>(rows * cols, 0.0));
}

/** The triad kernel: every fused multiply-accumulate form. */
KernelFunction
makeTriadKernel()
{
    KernelFunction fn;
    fn.name = "triads";
    fn.numArgs = 4;
    fn.buffers.resize(4);
    for (auto &buf : fn.buffers) {
        buf.dims = 1;
        buf.shapeClass = 0;
    }
    LoopNest nest;
    nest.domainBuf = 3;
    BodyBuilder b(nest.body);
    int x = b.load(0);
    int y = b.load(1);
    int z = b.load(2);
    int r1 = b.binary(Op::Add, b.binary(Op::Mul, x, y), z); // MulAdd
    int r2 = b.binary(Op::Add, y, b.binary(Op::Mul, x, z)); // AddMul
    int r3 = b.binary(Op::Sub, b.binary(Op::Mul, y, z), x); // MulSub
    int r4 = b.binary(Op::Sub, z, b.binary(Op::Mul, x, y)); // SubMul
    int r5 = b.binary(Op::Add, b.binary(Op::Mul, r1, r2),
                      b.constant(2.5));                     // MulAddK
    int r6 = b.binary(Op::Sub, b.binary(Op::Mul, r3, r4),
                      b.constant(1.5));                     // MulSubK
    int r7 = b.binary(Op::Sub, b.constant(4.0),
                      b.binary(Op::Mul, r5, r6));           // MulRsubK
    b.store(3, r7);
    fn.nests.push_back(std::move(nest));
    return fn;
}

TEST(JitCodegen, FusedTriadsKeepTwoRoundingSteps)
{
    KernelFunction fn = makeTriadKernel();
    const coord_t n = 777;
    std::vector<double> a(n), c(n), e(n), out(n, 0.0);
    fill(a, 21);
    fill(c, 22);
    fill(e, 23);
    std::vector<BufferBinding> binds{bindVec(a), bindVec(c), bindVec(e),
                                     bindVec(out)};
    expectTripleMatch(fn, binds, out, {},
                      std::vector<double>(n, 0.0));
}

TEST(JitCodegen, ReductionLaneOrderIdentity)
{
    // The generated code must fold reductions in the interpreter's
    // exact element order; with a warm (non-identity) accumulator the
    // sum is order-sensitive, so bitwise equality pins the order.
    for (ReductionOp op :
         {ReductionOp::Sum, ReductionOp::Max, ReductionOp::Min}) {
        KernelFunction fn;
        fn.name = "reduce";
        fn.numArgs = 3; // in, scale, acc
        fn.buffers.resize(3);
        fn.buffers[0].dims = 1;
        fn.buffers[0].shapeClass = 0;
        fn.buffers[1].dims = 1;
        fn.buffers[1].shapeClass = 1;
        fn.buffers[2].dims = 1;
        fn.buffers[2].shapeClass = 1;
        LoopNest nest;
        nest.domainBuf = 0;
        BodyBuilder b(nest.body);
        int prod = b.binary(Op::Mul, b.load(0), b.load(1));
        Reduction red;
        red.accBuf = 2;
        red.op = op;
        red.srcReg = prod;
        nest.reductions.push_back(red);
        fn.nests.push_back(std::move(nest));

        const coord_t n = 1000; // not a strip multiple
        std::vector<double> in(n), scale{1.0 / 3.0};
        fill(in, 10 + int(op));
        std::vector<double> acc{0.125};

        Executor ex;
        std::vector<BufferBinding> binds{bindVec(in), bindVec(scale),
                                         bindVec(acc)};
        ex.runScalar(fn, binds, {});
        double want = acc[0];

        JitBackend be = makeBackend();
        for (int w : kStrips) {
            CompiledKernel k = jitKernel(be, fn, w);
            ASSERT_NE(k.jit, nullptr);
            ASSERT_NE(k.jit->nest(0), nullptr);
            acc[0] = 0.125;
            ex.run(fn, *k.plan, binds, {}, k.jit.get());
            EXPECT_EQ(std::memcmp(&acc[0], &want, sizeof(double)), 0)
                << reductionOpName(op) << " strip " << w;
        }
    }
}

TEST(JitCodegen, BroadcastStoreRunsScalarFallbackUnchanged)
{
    // Storing through an extent-1 buffer from a size-n domain binds
    // with scalarFallback; the executor must take the scalar path
    // BEFORE consulting the attached module and agree with the oracle.
    KernelFunction fn;
    fn.name = "bcast_store";
    fn.numArgs = 2;
    fn.buffers.resize(2);
    fn.buffers[0].dims = 1;
    fn.buffers[0].shapeClass = 0;
    fn.buffers[1].dims = 1;
    fn.buffers[1].shapeClass = 1;
    LoopNest nest;
    nest.domainBuf = 0;
    BodyBuilder b(nest.body);
    b.store(1, b.load(0));
    fn.nests.push_back(std::move(nest));

    const coord_t n = 259;
    std::vector<double> in(n);
    fill(in, 13);
    std::vector<double> ref{0.0}, vec{0.0};

    Executor ex;
    {
        std::vector<BufferBinding> binds{bindVec(in), bindVec(ref)};
        ex.runScalar(fn, binds, {});
    }
    JitBackend be = makeBackend();
    for (int w : kStrips) {
        CompiledKernel k = jitKernel(be, fn, w);
        ASSERT_NE(k.jit, nullptr);
        vec[0] = 0.0;
        std::vector<BufferBinding> binds{bindVec(in), bindVec(vec)};
        ex.run(fn, *k.plan, binds, {}, k.jit.get());
        EXPECT_TRUE(bitEqual(vec, ref)) << "strip " << w;
    }
}

TEST(JitCodegen, ShiftedAliasFallsBackBitwise)
{
    // out[i] = in[i+1] + 1 with out a SHIFTED overlap of in: bind-time
    // alias analysis forces the scalar path; the attached module must
    // not change the interleaved result.
    KernelFunction fn;
    fn.name = "shifted";
    fn.numArgs = 2;
    fn.buffers.resize(2);
    for (auto &b : fn.buffers) {
        b.dims = 1;
        b.shapeClass = 0;
        b.aliasClass = 0;
    }
    LoopNest nest;
    nest.domainBuf = 1;
    BodyBuilder b(nest.body);
    b.store(1, b.binary(Op::Add, b.load(0), b.constant(1.0)));
    fn.nests.push_back(std::move(nest));

    const coord_t n = 700;
    std::vector<double> ref(n + 1), vec(n + 1);
    fill(ref, 11);
    vec = ref;

    auto makeBinds = [&](std::vector<double> &alloc) {
        BufferBinding in;
        in.base = alloc.data() + 1;
        in.dims = 1;
        in.extent[0] = n;
        in.stride[0] = 1;
        BufferBinding out = in;
        out.base = alloc.data();
        return std::vector<BufferBinding>{in, out};
    };

    Executor ex;
    ex.runScalar(fn, makeBinds(ref), {});
    JitBackend be = makeBackend();
    for (int w : kStrips) {
        CompiledKernel k = jitKernel(be, fn, w);
        ASSERT_NE(k.jit, nullptr);
        std::vector<double> probe(vec);
        ex.run(fn, *k.plan, makeBinds(probe), {}, k.jit.get());
        EXPECT_TRUE(bitEqual(probe, ref)) << "strip " << w;
    }
}

TEST(JitCodegen, MultiNestPartialExpressibility)
{
    // Nest 0 (tape <= maxTape) compiles; nest 1 (longer tape) stays on
    // the interpreter — and the mixed execution matches the oracle.
    KernelFunction fn;
    fn.name = "two_nests";
    fn.numArgs = 3;
    fn.buffers.resize(3);
    for (auto &b : fn.buffers) {
        b.dims = 1;
        b.shapeClass = 0;
    }
    int tmp = fn.addLocal(1, 0);
    {
        LoopNest nest;
        nest.domainBuf = 0;
        BodyBuilder b(nest.body);
        b.store(tmp, b.binary(Op::Add, b.load(0), b.load(1)));
        fn.nests.push_back(std::move(nest));
    }
    {
        LoopNest nest; // long chain: tape exceeds the gate below
        nest.domainBuf = 2;
        BodyBuilder b(nest.body);
        int t = b.load(tmp);
        for (int i = 0; i < 12; i++)
            t = b.binary(Op::Add, b.binary(Op::Mul, t, t),
                         b.constant(0.25 * i));
        b.store(2, t);
        fn.nests.push_back(std::move(nest));
    }

    JitBackend::Config cfg;
    cfg.shareProcessModules = false;
    ExecutablePlan probe = lowerPlan(fn, 256);
    ASSERT_EQ(probe.nests.size(), 2u);
    int len0 = int(probe.nests[0].dense.tape.size());
    int len1 = int(probe.nests[1].dense.tape.size());
    ASSERT_LT(len0, len1);
    cfg.maxTape = len0; // nest 0 in, nest 1 out
    JitBackend be{cfg};

    const coord_t n = 301;
    std::vector<double> a(n), c(n), ref(n, 0.0), vec(n, 0.0);
    fill(a, 14);
    fill(c, 15);
    Executor ex;
    {
        std::vector<BufferBinding> binds{bindVec(a), bindVec(c),
                                         bindVec(ref)};
        ex.runScalar(fn, binds, {});
    }
    for (int w : kStrips) {
        CompiledKernel k = jitKernel(be, fn, w);
        ASSERT_NE(k.jit, nullptr) << "strip " << w;
        EXPECT_NE(k.jit->nest(0), nullptr);
        EXPECT_EQ(k.jit->nest(1), nullptr);
        std::fill(vec.begin(), vec.end(), 0.0);
        std::vector<BufferBinding> binds{bindVec(a), bindVec(c),
                                         bindVec(vec)};
        ex.run(fn, *k.plan, binds, {}, k.jit.get());
        EXPECT_TRUE(bitEqual(vec, ref)) << "strip " << w;
    }
    EXPECT_GT(be.stats().nestsCompiled, 0u);
    EXPECT_GT(be.stats().nestsFallback, 0u);
}

TEST(JitCodegen, WhollyInexpressiblePlanNeverInvokesToolchain)
{
    JitBackend::Config cfg;
    cfg.shareProcessModules = false;
    cfg.maxTape = 0; // nothing qualifies
    JitBackend be{cfg};
    CompiledKernel k = jitKernel(be, makeEveryOpKernel(1), 256);
    EXPECT_EQ(k.jit, nullptr);
    JitBackend::Stats st = be.stats();
    EXPECT_EQ(st.kernelsCompiled, 0u);
    EXPECT_EQ(st.artifactMisses, 0u);
    EXPECT_EQ(st.nestsFallback, 1u);
}

TEST(JitCodegen, CompileFailureDegradesToInterpreter)
{
    JitBackend::Config cfg;
    cfg.shareProcessModules = false;
    cfg.cc = "/bin/false"; // toolchain down (DIFFUSE_JIT_CC analogue)
    JitBackend be{cfg};
    KernelFunction fn = makeEveryOpKernel(1);
    CompiledKernel k = jitKernel(be, fn, 256);
    EXPECT_EQ(k.jit, nullptr);
    EXPECT_EQ(be.stats().kernelsCompiled, 0u);
    EXPECT_EQ(be.stats().compileFailures, 1u);

    // Execution still runs (interpreter) and matches the oracle.
    const coord_t n = 123;
    std::vector<double> a(n), b(n), ref(n, 0.0), vec(n, 0.0);
    fill(a, 31);
    fill(b, 32);
    double scal = 0.5;
    Executor ex;
    {
        std::vector<BufferBinding> binds{bindVec(a), bindVec(b),
                                         bindVec(ref)};
        ex.runScalar(fn, binds, std::span(&scal, 1));
    }
    std::vector<BufferBinding> binds{bindVec(a), bindVec(b),
                                     bindVec(vec)};
    ex.run(fn, *k.plan, binds, std::span(&scal, 1), k.jit.get());
    EXPECT_TRUE(bitEqual(vec, ref));
}

TEST(JitCodegen, GeneratedSourceStructure)
{
    // The bitwise-identity obligations are visible in the source:
    // triads keep two rounding steps (a named temporary), and the
    // non-correctly-rounded transcendentals route through the runtime
    // function table instead of libm symbols gcc could fold.
    {
        ExecutablePlan plan = lowerPlan(makeTriadKernel(), 256);
        std::string src =
            generateJitSource(plan, {true}, "deadbeef");
        EXPECT_NE(src.find("double t = "), std::string::npos);
        EXPECT_NE(src.find("const char diffuse_jit_key[] = "
                           "\"deadbeef\";"),
                  std::string::npos);
        EXPECT_NE(src.find("diffuse_nest_0"), std::string::npos);
    }
    {
        ExecutablePlan plan = lowerPlan(makeEveryOpKernel(1), 256);
        std::string src =
            generateJitSource(plan, {true}, "deadbeef");
        EXPECT_NE(src.find("F->pow_("), std::string::npos);
        EXPECT_NE(src.find("F->exp_("), std::string::npos);
        EXPECT_NE(src.find("F->log_("), std::string::npos);
        EXPECT_NE(src.find("F->erf_("), std::string::npos);
        EXPECT_NE(src.find("__builtin_sqrt("), std::string::npos);
        // No direct libm calls the C compiler could constant-fold.
        EXPECT_EQ(src.find(" pow("), std::string::npos);
        EXPECT_EQ(src.find(" exp("), std::string::npos);
    }
}

TEST(JitCodegen, GemvAndCsrNestsAreLeftToFixedFunctionPaths)
{
    KernelFunction fn;
    fn.name = "gemv";
    fn.numArgs = 3;
    fn.buffers.resize(3);
    fn.buffers[0].dims = 2;
    fn.buffers[0].shapeClass = 0;
    fn.buffers[1].dims = 1;
    fn.buffers[1].shapeClass = 1;
    fn.buffers[2].dims = 1;
    fn.buffers[2].shapeClass = 2;
    LoopNest nest;
    nest.kind = NestKind::Gemv;
    nest.gemvA = 0;
    nest.gemvX = 1;
    nest.gemvY = 2;
    nest.domainBuf = 0;
    fn.nests.push_back(std::move(nest));

    JitBackend be = makeBackend();
    CompiledKernel k = jitKernel(be, fn, 256);
    EXPECT_EQ(k.jit, nullptr);
    EXPECT_EQ(be.stats().kernelsCompiled, 0u);
    EXPECT_EQ(be.stats().nestsFallback, 1u);
}

} // namespace
} // namespace kir
} // namespace diffuse
